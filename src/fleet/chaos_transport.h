// Deterministic network-fault injection for fleet transports (DESIGN.md §14).
//
// ChaosClient decorates any TransportClient and injects, per exchange and per
// direction, the faults a real network delivers: message loss, added latency,
// duplicated deliveries, truncated frames, and full partitions. Every decision
// is drawn from a seeded splitmix64 stream in a fixed order per Call, so a
// given (spec, call sequence) replays the identical fault schedule — chaos runs
// are reproducible, which is what lets the chaos e2e suite assert bug-set
// equality instead of merely "it didn't crash".
//
// Fault model, mapped onto one request/response exchange:
//
//   drop_send=P    the request is lost before the server sees it. The caller's
//                  retry re-sends; no server state changed.
//   trunc=P        the request frame is truncated in flight. Length-prefixed
//                  framing turns truncation into loss at the RPC layer (the
//                  torn frame never parses; the server closes the connection),
//                  so the decorator models it as send-side loss with separate
//                  accounting; byte-level torn-frame robustness of the TCP
//                  framing itself is covered by transport_test.
//   dup=P          the request is delivered TWICE (the inner Call runs twice).
//                  The server processes both copies — this is the fault that
//                  proves nonce-based request dedup: without it, a duplicated
//                  lease grant or result publish would double-mutate.
//   drop_recv=P    the request is delivered and processed, but the RESPONSE is
//                  lost. The dangerous direction: the caller cannot tell this
//                  from drop_send, so its re-send replays a request the server
//                  already executed — exactly-once then rests entirely on the
//                  receiver's idempotency.
//   delay_ms=N     uniform extra latency in [0, N] ms, injected independently
//                  in each direction.
//   partition_after_ms=A, partition_ms=D, partition_every_ms=E, partition_dir=
//                  a full partition window: from A after the client's first use,
//                  for D ms, recurring every E ms (0 = once), blocking the send
//                  direction, the recv direction, or both. Send-blocked calls
//                  fail without reaching the server; recv-blocked calls reach
//                  and mutate the server but lose the response.
//
// Spec strings are comma-separated key=value lists, e.g.
//   "seed=7,drop_send=0.1,drop_recv=0.1,dup=0.2,delay_ms=5"
//   "seed=3,partition_after_ms=200,partition_ms=700,partition_dir=both"
//
// The decorator wraps clients only: in a request/response protocol every fault
// a server could inject is observable by some client as one of the above, and
// the coordinator must never be in the business of losing its own state.
#ifndef SRC_FLEET_CHAOS_TRANSPORT_H_
#define SRC_FLEET_CHAOS_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/fleet/transport.h"

namespace tsvd::fleet {

enum class PartitionDir { kSend, kRecv, kBoth };

struct ChaosSpec {
  uint64_t seed = 1;
  double drop_send = 0;  // probabilities in [0, 1]
  double drop_recv = 0;
  double dup = 0;
  double trunc = 0;
  int delay_ms = 0;               // max uniform extra latency per direction
  int64_t partition_after_ms = -1;  // <0 = never partition
  int64_t partition_ms = 0;         // window duration
  int64_t partition_every_ms = 0;   // recurrence period; 0 = one window only
  PartitionDir partition_dir = PartitionDir::kBoth;

  // Parses a comma-separated key=value spec. Unknown keys, unparseable values,
  // and probabilities outside [0, 1] fail with `error` set. An empty string is
  // a valid no-fault spec.
  static bool Parse(const std::string& text, ChaosSpec* out, std::string* error);
};

// What the decorator actually did — asserted by tests, printed by tools.
struct ChaosStats {
  uint64_t calls = 0;
  uint64_t dropped_send = 0;
  uint64_t dropped_recv = 0;
  uint64_t duplicated = 0;
  uint64_t truncated = 0;
  uint64_t partitioned = 0;
  uint64_t delayed = 0;
};

class ChaosClient : public TransportClient {
 public:
  // `seed_salt` lets several clients sharing one spec (an agent's lease loop
  // and its heartbeat thread) draw from distinct deterministic streams.
  ChaosClient(std::unique_ptr<TransportClient> inner, ChaosSpec spec,
              uint64_t seed_salt = 0);

  bool Call(const campaign::Json& request, campaign::Json* response,
            std::string* error) override;
  void set_connect_timeout_ms(int ms) override;

  ChaosStats stats() const;

 private:
  bool InPartition(PartitionDir direction) const;
  uint64_t NextRandom();
  bool Flip(double probability);

  const std::unique_ptr<TransportClient> inner_;
  const ChaosSpec spec_;
  uint64_t rng_state_;
  int64_t epoch_us_ = 0;  // first-use timestamp; partition windows are relative
  ChaosStats stats_;
};

// Convenience wrapper: parses `spec_text` and decorates `inner`. An empty spec
// returns `inner` unchanged. Returns null with `error` set on a malformed spec.
std::unique_ptr<TransportClient> WrapWithChaos(
    std::unique_ptr<TransportClient> inner, const std::string& spec_text,
    uint64_t seed_salt, std::string* error);

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_CHAOS_TRANSPORT_H_
