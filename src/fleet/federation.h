// Multi-machine trap-store federation (DESIGN.md §14).
//
// A fleet per machine is the natural unit — one coordinator, local agents — but
// the trap store is the campaign's accumulated knowledge, and machines running
// the same target should share it. Federation gossips the store between
// coordinators over any transport backend (in practice tcp:): each coordinator
// answers store_pull / store_push exchanges against its TrapStoreService, and a
// StoreFederator thread periodically pulls each configured peer's store and
// pushes its own when it has grown.
//
// Correctness over lossy links comes for free from the data model, not the
// protocol: the trap store is a canonical set with monotone-union merge
// (TrapFile::Merge), so deltas are commutative and idempotent — a dropped pull
// is retried next cycle, a duplicated push merges to the same set, and pulls
// crossing pushes cannot conflict. Remote pairs are STAGED
// (TrapStoreService::StageFederated) and folded in only at the local round
// boundary, so federation never violates the every-job-of-a-round-sees-one-
// snapshot invariant that the bug-set-equality contract rests on.
//
// Version numbers are local counters, so cross-machine comparison is only
// meaningful as "unchanged since I last looked": pull requests carry the
// version last seen from that peer and the peer omits the (potentially large)
// serialized store when it matches — the steady-state cycle is two small
// frames per peer.
#ifndef SRC_FLEET_FEDERATION_H_
#define SRC_FLEET_FEDERATION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/json.h"
#include "src/fleet/transport.h"
#include "src/fleet/trap_store.h"

namespace tsvd::fleet {

// Serves the federation side of the protocol: store_pull and store_push against
// `store`. Returns true with *response filled when `request` was one of the two
// store exchanges; returns false (response untouched) for any other request so
// the caller can route it elsewhere. Thread-safe (TrapStoreService is).
bool HandleStoreRequest(TrapStoreService* store, const campaign::Json& request,
                        campaign::Json* response);

struct FederationOptions {
  std::vector<std::string> peers;  // transport addresses of peer coordinators
  int interval_ms = 1000;          // gossip cycle period
  int connect_timeout_ms = 10'000;
  std::string chaos;  // chaos spec applied to every peer link ("" = none)
};

struct FederationStats {
  uint64_t pulls = 0;         // successful store_pull exchanges
  uint64_t pushes = 0;        // successful store_push exchanges
  uint64_t failures = 0;      // exchanges lost to the network (retried next cycle)
  uint64_t pairs_staged = 0;  // remote pairs staged across all pulls
};

// Background gossip thread: every interval, pulls each peer's store into
// `store`'s staging area and pushes the local store to peers that have not
// acked the current version. Peers being down or the link being chaotic is the
// expected case — failures are counted and the next cycle retries.
class StoreFederator {
 public:
  StoreFederator(TrapStoreService* store, FederationOptions options);
  ~StoreFederator();

  // Builds (and chaos-wraps) one client per peer and starts the gossip thread.
  // Fails only on a malformed peer address or chaos spec.
  bool Start(std::string* error);
  void Stop();

  FederationStats stats() const;

 private:
  void Loop();
  void GossipOnce();

  TrapStoreService* const store_;
  const FederationOptions options_;

  struct Peer {
    std::string address;
    std::unique_ptr<TransportClient> client;
    uint64_t seen_version = 0;    // peer's version at our last successful pull
    uint64_t pushed_version = 0;  // our version at the peer's last successful ack
  };
  std::vector<Peer> peers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  FederationStats stats_;
  std::thread thread_;
};

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_FEDERATION_H_
