// Fleet wire protocol (DESIGN.md §13): the JSON request/response vocabulary between
// coordinator and agents, plus the campaign-options codec that lets every agent
// rebuild the exact corpus and delay-engine config the coordinator scheduled.
//
// Exchanges (all initiated by the agent):
//
//   hello   {type:"hello", agent, protocol_version, codec_version[, auth_token]}
//        -> {type:"setup", options:{...}, corpus_size}          // join the fleet
//        -> {type:"error", error}                               // version mismatch
//                                                               // or bad token
//
//   lease   {type:"lease", agent, nonce, trap_version}
//        -> {type:"job", lease, round, module_index,
//            trap_version[, traps]}                             // traps only when
//                                                               // the agent is stale
//        -> {type:"wait", wait_ms}                              // nothing leasable
//        -> {type:"done", interrupted}                          // campaign over
//
//   result  {type:"result", agent, nonce, lease, outcome:{...}} // outcome_codec.h
//        -> {type:"ack", accepted}                              // false = duplicate
//                                                               // (stolen lease won)
//
//   heartbeat {type:"heartbeat", agent}                         // liveness proof
//        -> {type:"beat"}                                       // still in fleet
//        -> {type:"evicted"}                                    // missed too many
//        -> {type:"done", interrupted}                          // campaign over
//
//   store_pull {type:"store_pull", have_version}                // federation peer
//        -> {type:"store", version[, traps]}                    // traps only when
//                                                               // the peer is stale
//   store_push {type:"store_push", traps}
//        -> {type:"ack", accepted, version}                     // accepted = grew
//
// Exactly-once over a lossy network: the `nonce` on lease/result requests is a
// per-agent monotonically increasing counter, held constant across re-sends of
// the same logical request. The coordinator caches the last {nonce, response}
// per agent; a replay with the cached nonce returns the cached response without
// re-executing the handler, so a duplicated or retried request cannot grant two
// leases or double-publish a result even when the original response was lost in
// flight. Hello, heartbeat, and the store exchanges are naturally idempotent
// (set-union / last-write semantics) and carry no nonce.
//
// Versioning: the hello handshake checks both the protocol version and the
// RunOutcome codec version (src/sandbox/outcome_codec.h), so mixed-build fleets
// fail at join time with a clear error instead of mid-campaign. Version 2 added
// nonces, heartbeats, and the store federation exchanges; the check is an exact
// match, so v1 and v2 processes refuse to form a fleet.
#ifndef SRC_FLEET_PROTOCOL_H_
#define SRC_FLEET_PROTOCOL_H_

#include <string>

#include "src/campaign/campaign.h"
#include "src/campaign/json.h"

namespace tsvd::fleet {

inline constexpr int64_t kFleetProtocolVersion = 2;

// Encodes the subset of CampaignOptions that determines campaign identity and
// per-run execution: detector, corpus shape, seeds, scale, sandbox policy, fault
// counts, and delay-engine overrides. Process-local fields (workers, out_dir,
// resume, interrupt hook, snapshot cadence) are deliberately not shipped — each
// process owns those.
campaign::Json EncodeCampaignOptions(const campaign::CampaignOptions& options);

// Strict inverse. Fields absent from the document keep their defaults; a
// present-but-mistyped field fails with `error` set.
bool DecodeCampaignOptions(const campaign::Json& doc,
                           campaign::CampaignOptions* options, std::string* error);

// Length-leaking but content-constant-time string comparison, for the hello
// shared-secret check: the comparison inspects every byte of both strings
// regardless of where they first differ, so response timing cannot be used to
// guess a token byte-by-byte. (Leaking the length is acceptable — tokens are
// operator-chosen secrets, not padded cryptographic material.)
bool ConstantTimeEquals(const std::string& a, const std::string& b);

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_PROTOCOL_H_
