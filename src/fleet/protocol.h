// Fleet wire protocol (DESIGN.md §13): the JSON request/response vocabulary between
// coordinator and agents, plus the campaign-options codec that lets every agent
// rebuild the exact corpus and delay-engine config the coordinator scheduled.
//
// Exchanges (all initiated by the agent):
//
//   hello   {type:"hello", agent, protocol_version, codec_version}
//        -> {type:"setup", options:{...}, corpus_size}          // join the fleet
//        -> {type:"error", error}                               // version mismatch
//
//   lease   {type:"lease", agent, trap_version}
//        -> {type:"job", lease, round, module_index,
//            trap_version[, traps]}                             // traps only when
//                                                               // the agent is stale
//        -> {type:"wait", wait_ms}                              // nothing leasable
//        -> {type:"done", interrupted}                          // campaign over
//
//   result  {type:"result", agent, lease, outcome:{...}}        // outcome_codec.h
//        -> {type:"ack", accepted}                              // false = duplicate
//                                                               // (stolen lease won)
//
// Versioning: the hello handshake checks both the protocol version and the
// RunOutcome codec version (src/sandbox/outcome_codec.h), so mixed-build fleets
// fail at join time with a clear error instead of mid-campaign.
#ifndef SRC_FLEET_PROTOCOL_H_
#define SRC_FLEET_PROTOCOL_H_

#include <string>

#include "src/campaign/campaign.h"
#include "src/campaign/json.h"

namespace tsvd::fleet {

inline constexpr int64_t kFleetProtocolVersion = 1;

// Encodes the subset of CampaignOptions that determines campaign identity and
// per-run execution: detector, corpus shape, seeds, scale, sandbox policy, fault
// counts, and delay-engine overrides. Process-local fields (workers, out_dir,
// resume, interrupt hook, snapshot cadence) are deliberately not shipped — each
// process owns those.
campaign::Json EncodeCampaignOptions(const campaign::CampaignOptions& options);

// Strict inverse. Fields absent from the document keep their defaults; a
// present-but-mistyped field fails with `error` set.
bool DecodeCampaignOptions(const campaign::Json& doc,
                           campaign::CampaignOptions* options, std::string* error);

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_PROTOCOL_H_
