#include "src/fleet/chaos_transport.h"

#include <cstdlib>
#include <utility>

#include "src/common/clock.h"

namespace tsvd::fleet {

namespace {

using campaign::Json;

// splitmix64: tiny, stateless-step, and good enough to decorrelate fault draws.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool ParseProbability(const std::string& value, double* out) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return false;
  }
  *out = p;
  return true;
}

bool ParseNonNegative(const std::string& value, int64_t* out) {
  char* end = nullptr;
  const long long n = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n < 0) {
    return false;
  }
  *out = n;
  return true;
}

}  // namespace

bool ChaosSpec::Parse(const std::string& text, ChaosSpec* out,
                      std::string* error) {
  *out = ChaosSpec();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      *error = "chaos spec item \"" + item + "\" is not key=value";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    int64_t n = 0;
    if (key == "seed") {
      if (!ParseNonNegative(value, &n)) {
        *error = "chaos spec: seed must be a non-negative integer, got \"" +
                 value + "\"";
        return false;
      }
      out->seed = static_cast<uint64_t>(n);
    } else if (key == "drop_send" || key == "drop_recv" || key == "dup" ||
               key == "trunc") {
      double p = 0;
      if (!ParseProbability(value, &p)) {
        *error = "chaos spec: " + key + " must be a probability in [0, 1], got \"" +
                 value + "\"";
        return false;
      }
      (key == "drop_send"   ? out->drop_send
       : key == "drop_recv" ? out->drop_recv
       : key == "dup"       ? out->dup
                            : out->trunc) = p;
    } else if (key == "delay_ms") {
      if (!ParseNonNegative(value, &n)) {
        *error = "chaos spec: delay_ms must be a non-negative integer";
        return false;
      }
      out->delay_ms = static_cast<int>(n);
    } else if (key == "partition_after_ms") {
      if (!ParseNonNegative(value, &n)) {
        *error = "chaos spec: partition_after_ms must be a non-negative integer";
        return false;
      }
      out->partition_after_ms = n;
    } else if (key == "partition_ms") {
      if (!ParseNonNegative(value, &n)) {
        *error = "chaos spec: partition_ms must be a non-negative integer";
        return false;
      }
      out->partition_ms = n;
    } else if (key == "partition_every_ms") {
      if (!ParseNonNegative(value, &n)) {
        *error = "chaos spec: partition_every_ms must be a non-negative integer";
        return false;
      }
      out->partition_every_ms = n;
    } else if (key == "partition_dir") {
      if (value == "send") {
        out->partition_dir = PartitionDir::kSend;
      } else if (value == "recv") {
        out->partition_dir = PartitionDir::kRecv;
      } else if (value == "both") {
        out->partition_dir = PartitionDir::kBoth;
      } else {
        *error = "chaos spec: partition_dir must be send|recv|both, got \"" +
                 value + "\"";
        return false;
      }
    } else {
      *error = "chaos spec: unknown key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

ChaosClient::ChaosClient(std::unique_ptr<TransportClient> inner, ChaosSpec spec,
                         uint64_t seed_salt)
    : inner_(std::move(inner)),
      spec_(spec),
      rng_state_(spec.seed ^ (seed_salt * 0x9e3779b97f4a7c15ull)) {}

void ChaosClient::set_connect_timeout_ms(int ms) {
  inner_->set_connect_timeout_ms(ms);
}

ChaosStats ChaosClient::stats() const { return stats_; }

uint64_t ChaosClient::NextRandom() { return SplitMix64(&rng_state_); }

bool ChaosClient::Flip(double probability) {
  if (probability <= 0.0) {
    NextRandom();  // keep the draw sequence fixed regardless of the spec
    return false;
  }
  return static_cast<double>(NextRandom() >> 11) * 0x1.0p-53 < probability;
}

bool ChaosClient::InPartition(PartitionDir direction) const {
  if (spec_.partition_after_ms < 0 || spec_.partition_ms <= 0) {
    return false;
  }
  if (direction != spec_.partition_dir &&
      spec_.partition_dir != PartitionDir::kBoth) {
    return false;
  }
  const int64_t elapsed_ms = (NowMicros() - epoch_us_) / 1000;
  if (elapsed_ms < spec_.partition_after_ms) {
    return false;
  }
  const int64_t since_onset = elapsed_ms - spec_.partition_after_ms;
  if (spec_.partition_every_ms > 0) {
    return since_onset % spec_.partition_every_ms < spec_.partition_ms;
  }
  return since_onset < spec_.partition_ms;
}

bool ChaosClient::Call(const Json& request, Json* response, std::string* error) {
  if (epoch_us_ == 0) {
    epoch_us_ = NowMicros();
  }
  ++stats_.calls;

  // Draw every fault decision up front, in a fixed order, so the schedule is a
  // pure function of (seed, call index) — outcomes of earlier faults cannot
  // shift later draws.
  const uint64_t send_delay_draw = NextRandom();
  const bool truncate = Flip(spec_.trunc);
  const bool drop_send = Flip(spec_.drop_send);
  const bool duplicate = Flip(spec_.dup);
  const uint64_t recv_delay_draw = NextRandom();
  const bool drop_recv = Flip(spec_.drop_recv);

  if (spec_.delay_ms > 0) {
    ++stats_.delayed;
    SleepMicros(static_cast<Micros>(
        send_delay_draw % (static_cast<uint64_t>(spec_.delay_ms) * 1000 + 1)));
  }
  if (InPartition(PartitionDir::kSend)) {
    ++stats_.partitioned;
    *error = "chaos: network partition (send direction)";
    return false;
  }
  if (truncate) {
    ++stats_.truncated;
    *error = "chaos: request frame truncated in flight";
    return false;
  }
  if (drop_send) {
    ++stats_.dropped_send;
    *error = "chaos: request dropped";
    return false;
  }

  Json first_response;
  std::string inner_error;
  bool ok = inner_->Call(request, &first_response, &inner_error);
  if (duplicate) {
    // The duplicated copy really reaches the server — both deliveries execute
    // the handler, which is what exercises receiver-side request dedup. The
    // caller only ever sees one response.
    ++stats_.duplicated;
    Json second_response;
    std::string second_error;
    const bool second_ok =
        inner_->Call(request, &second_response, &second_error);
    if (!ok && second_ok) {
      first_response = std::move(second_response);
      ok = true;
    }
  }
  if (!ok) {
    *error = inner_error;
    return false;
  }

  if (spec_.delay_ms > 0) {
    SleepMicros(static_cast<Micros>(
        recv_delay_draw % (static_cast<uint64_t>(spec_.delay_ms) * 1000 + 1)));
  }
  if (InPartition(PartitionDir::kRecv)) {
    ++stats_.partitioned;
    *error = "chaos: network partition (recv direction, response lost)";
    return false;
  }
  if (drop_recv) {
    ++stats_.dropped_recv;
    *error = "chaos: response dropped (request was delivered)";
    return false;
  }
  *response = std::move(first_response);
  return true;
}

std::unique_ptr<TransportClient> WrapWithChaos(
    std::unique_ptr<TransportClient> inner, const std::string& spec_text,
    uint64_t seed_salt, std::string* error) {
  if (spec_text.empty()) {
    return inner;
  }
  ChaosSpec spec;
  if (!ChaosSpec::Parse(spec_text, &spec, error)) {
    return nullptr;
  }
  return std::make_unique<ChaosClient>(std::move(inner), spec, seed_salt);
}

}  // namespace tsvd::fleet
