// The coordinator's trap-store service (DESIGN.md §13).
//
// The fleet-wide trap store is the distributed form of the campaign's between-round
// trap carry-over (PAPER.md §3.4.6): agents publish the near-miss pairs each run
// learned, the coordinator merges them monotonically (union + canonical order, via
// TrapFile), and agents fetch the merged store before their next run. Two pieces:
//
//  - TrapStoreService: the in-memory versioned store the coordinator serves over the
//    transport. Versions advance only at round boundaries, so every job of a round
//    imports the same snapshot — the exact semantics of the single-process
//    campaign's per-round `imported` copy, which the fleet's bug-set-equality
//    contract depends on. The version lets agents cache: a lease response carries
//    the serialized store only when the agent's cached version is stale.
//
//  - MergeIntoStoreFile: cross-process monotone-union merge into a trap file on
//    disk, serialized by an advisory file lock around TrapFile's atomic-rename
//    save. Concurrent mergers never lose an entry — without the lock, two
//    read-merge-write cycles could interleave and the later rename would drop the
//    earlier writer's pairs.
#ifndef SRC_FLEET_TRAP_STORE_H_
#define SRC_FLEET_TRAP_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "src/report/trap_file.h"

namespace tsvd::fleet {

class TrapStoreService {
 public:
  // The current canonical store and its version. Thread-safe.
  TrapFile Snapshot(uint64_t* version = nullptr) const;
  uint64_t version() const;

  // When `have_version` is stale, stores the current version and the serialized
  // store and returns true; when the caller is already current, returns false and
  // touches nothing.
  bool SerializeIfStale(uint64_t have_version, uint64_t* version,
                        std::string* text) const;

  // Seeds the store from a resumed campaign's merged traps without bumping the
  // version. Call before serving.
  void Restore(TrapFile initial);

  // Round boundary: merges the round's learned pairs — plus anything staged by
  // federation since the last boundary — and bumps the version if the store
  // grew. Returns the store size after the merge.
  size_t CommitRound(const TrapFile& round_traps);

  // Federation intake (DESIGN.md §14): pairs learned by a *peer* coordinator are
  // staged here and folded in only at the next CommitRound, preserving the
  // round-boundary commit invariant — every job of a round still imports one
  // snapshot, no matter when a peer's delta arrived. Returns how many staged
  // pairs are pending. Thread-safe; TrapFile::Merge's monotone union makes
  // re-delivery (duplicated or replayed pushes) harmless.
  size_t StageFederated(const TrapFile& remote_traps);

  // Pairs staged but not yet committed. For tests and stats.
  size_t staged_size() const;

 private:
  mutable std::mutex mu_;
  TrapFile store_;
  TrapFile staged_;  // federation deltas awaiting the next round boundary
  uint64_t version_ = 1;
};

// Merges `traps` into the trap file at `path` (created if missing) under an
// exclusive advisory lock on `path` + ".lock", so any number of processes can merge
// concurrently without losing entries. The store itself is replaced atomically
// (temp + rename, durability per SetDurableFileSync), so readers — including
// lock-free ones — never observe a torn file. On success, `merged_size` (when
// non-null) receives the store size after the merge. Returns false on I/O failure
// with `error` describing it.
bool MergeIntoStoreFile(const std::string& path, const TrapFile& traps,
                        std::string* error = nullptr,
                        size_t* merged_size = nullptr);

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_TRAP_STORE_H_
