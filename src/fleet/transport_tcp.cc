#include "src/fleet/transport_tcp.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/fleet/wire.h"

namespace tsvd::fleet {
namespace {

using campaign::Json;

struct TcpAddress {
  std::string host;  // empty = wildcard (server) / loopback is NOT implied
  std::string port;
  int backlog = 128;
};

// "<host>:<port>[?backlog=N]". The host may be a name, an IPv4 literal, or a
// bracketed IPv6 literal ("[::1]:7777"); the port is split at the *last* colon
// so unbracketed IPv6 literals fail loudly instead of mis-parsing.
bool ParseTcpAddress(const std::string& spec, TcpAddress* out,
                     std::string* error) {
  std::string rest = spec;
  const size_t query = rest.find('?');
  if (query != std::string::npos) {
    const std::string params = rest.substr(query + 1);
    rest.resize(query);
    if (params.rfind("backlog=", 0) == 0) {
      const long backlog = std::strtol(params.c_str() + 8, nullptr, 10);
      if (backlog <= 0 || backlog > 65535) {
        *error = "tcp address \"" + spec + "\": backlog must be in [1, 65535]";
        return false;
      }
      out->backlog = static_cast<int>(backlog);
    } else {
      *error = "tcp address \"" + spec + "\": unknown parameter \"" + params +
               "\" (want backlog=N)";
      return false;
    }
  }
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon + 1 == rest.size()) {
    *error = "tcp address \"" + spec + "\": want host:port";
    return false;
  }
  out->host = rest.substr(0, colon);
  out->port = rest.substr(colon + 1);
  if (out->host.size() >= 2 && out->host.front() == '[' &&
      out->host.back() == ']') {
    out->host = out->host.substr(1, out->host.size() - 2);  // [::1] -> ::1
  }
  for (const char c : out->port) {
    if (c < '0' || c > '9') {
      *error = "tcp address \"" + spec + "\": port \"" + out->port +
               "\" is not a number";
      return false;
    }
  }
  return true;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

class TcpServer : public TransportServer {
 public:
  explicit TcpServer(TcpAddress address) : address_(std::move(address)) {}
  ~TcpServer() override { Stop(); }

  bool Start(RequestHandler handler, std::string* error) override {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* results = nullptr;
    const int rc =
        ::getaddrinfo(address_.host.empty() ? nullptr : address_.host.c_str(),
                      address_.port.c_str(), &hints, &results);
    if (rc != 0) {
      *error = "resolve " + address_.host + ":" + address_.port + ": " +
               ::gai_strerror(rc);
      return false;
    }
    std::string last_error = "no usable address";
    for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family,
                              ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
      if (fd < 0) {
        last_error = Errno("socket");
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
          ::listen(fd, address_.backlog) != 0) {
        last_error = Errno("bind/listen " + address_.host + ":" + address_.port);
        ::close(fd);
        continue;
      }
      listen_fd_ = fd;
      break;
    }
    ::freeaddrinfo(results);
    if (listen_fd_ < 0) {
      *error = last_error;
      return false;
    }
    handler_ = std::move(handler);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  void Stop() override {
    if (listen_fd_ < 0) {
      return;
    }
    stopping_.store(true, std::memory_order_relaxed);
    // shutdown wakes a blocked accept on Linux; closing alone need not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int fd : conn_fds_) {
        ::shutdown(fd, SHUT_RDWR);
      }
    }
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    conn_threads_.clear();
    conn_fds_.clear();
  }

  // Actual bound port (differs from the requested one when it was 0).
  int bound_port() const {
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (listen_fd_ < 0 ||
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
            0) {
      return -1;
    }
    if (addr.ss_family == AF_INET) {
      return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    }
    if (addr.ss_family == AF_INET6) {
      return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
    }
    return -1;
  }

 private:
  void AcceptLoop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) {
          continue;
        }
        break;  // shutdown (or a fatal accept error): stop serving
      }
      SetNoDelay(fd);
      std::lock_guard<std::mutex> lock(mu_);
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
    }
  }

  void ServeConnection(int fd) {
    std::string payload;
    while (!stopping_.load(std::memory_order_relaxed)) {
      // A torn frame, an oversized length (garbage prefix), or any socket error
      // closes this connection; other connections keep serving.
      if (wire::RecvFrame(fd, &payload) != 1) {
        break;
      }
      Json request;
      Json response;
      if (Json::Parse(payload, &request)) {
        response = handler_(request);
      } else {
        response = Json::MakeObject();
        response.Set("type", "error");
        response.Set("error", "unparseable request");
      }
      if (!wire::SendFrame(fd, response.Dump())) {
        break;
      }
    }
    ::close(fd);
  }

  const TcpAddress address_;
  RequestHandler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

class TcpClient : public TransportClient {
 public:
  explicit TcpClient(TcpAddress address) : address_(std::move(address)) {}
  ~TcpClient() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  void set_connect_timeout_ms(int ms) override { connect_timeout_ms_ = ms; }

  bool Call(const Json& request, Json* response, std::string* error) override {
    if (fd_ < 0 && !Connect(error)) {
      return false;
    }
    errno = 0;  // distinguish a clean peer close from a real socket error
    std::string payload;
    if (!wire::SendFrame(fd_, request.Dump()) ||
        wire::RecvFrame(fd_, &payload) != 1) {
      const int err = errno;
      // Sever the exchange: the next Call reconnects from scratch.
      ::close(fd_);
      fd_ = -1;
      *error = "coordinator connection lost (tcp:" + address_.host + ":" +
               address_.port + "): " +
               (err != 0 ? std::strerror(err) : "connection closed by peer");
      return false;
    }
    if (!Json::Parse(payload, response)) {
      *error = "unparseable response from coordinator";
      return false;
    }
    return true;
  }

 private:
  bool Connect(std::string* error) {
    const Micros deadline =
        NowMicros() + static_cast<Micros>(connect_timeout_ms_) * 1000;
    std::string last_error;
    while (true) {
      if (TryConnectOnce(&last_error)) {
        return true;
      }
      // The coordinator may simply not be listening yet (agents are often
      // spawned first, and across machines it may still be booting); retry
      // until the deadline.
      if (NowMicros() >= deadline) {
        *error = "connect tcp:" + address_.host + ":" + address_.port + ": " +
                 last_error;
        return false;
      }
      SleepMicros(20'000);
    }
  }

  bool TryConnectOnce(std::string* last_error) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* results = nullptr;
    const int rc = ::getaddrinfo(
        address_.host.empty() ? "127.0.0.1" : address_.host.c_str(),
        address_.port.c_str(), &hints, &results);
    if (rc != 0) {
      *last_error = std::string(::gai_strerror(rc));
      return false;
    }
    for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family,
                              ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
      if (fd < 0) {
        *last_error = Errno("socket");
        continue;
      }
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        SetNoDelay(fd);
        fd_ = fd;
        ::freeaddrinfo(results);
        return true;
      }
      *last_error = std::strerror(errno);
      ::close(fd);
    }
    ::freeaddrinfo(results);
    return false;
  }

  const TcpAddress address_;
  int connect_timeout_ms_ = 10'000;
  int fd_ = -1;
};

}  // namespace

std::unique_ptr<TransportServer> MakeTcpTransportServer(
    const std::string& hostport, std::string* error) {
  TcpAddress address;
  if (!ParseTcpAddress(hostport, &address, error)) {
    return nullptr;
  }
  return std::make_unique<TcpServer>(std::move(address));
}

std::unique_ptr<TransportClient> MakeTcpTransportClient(
    const std::string& hostport, std::string* error) {
  TcpAddress address;
  if (!ParseTcpAddress(hostport, &address, error)) {
    return nullptr;
  }
  return std::make_unique<TcpClient>(std::move(address));
}

}  // namespace tsvd::fleet
