// Shared socket wire helpers for the stream transports (DESIGN.md §13–14).
//
// Both stream backends — uds: (newline-delimited JSON) and tcp: (length-prefixed
// frames) — move bytes with the same two EINTR-safe loops. They live here so the
// TCP backend reuses the exact loops the unix-socket backend has been proving
// since PR 6 rather than reimplementing partial-write handling.
//
// The TCP frame format is deliberately dumb: a 4-byte big-endian payload length
// followed by that many bytes of compact JSON. Length-prefixed framing turns any
// in-flight truncation into a detectable short read (the frame never parses as a
// shorter valid document), and the length guard turns a garbage prefix — a port
// scanner, an HTTP client, a corrupted length — into a clean connection close
// instead of a multi-gigabyte allocation.
#ifndef SRC_FLEET_WIRE_H_
#define SRC_FLEET_WIRE_H_

#include <sys/socket.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

namespace tsvd::fleet::wire {

// Largest frame payload a peer may declare. The biggest real document is a
// serialized trap store; even pathological campaigns stay far below this.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

// Writes all `len` bytes to a connected socket, restarting on EINTR.
// MSG_NOSIGNAL so a peer that died mid-exchange surfaces as EPIPE, not a
// process-wide SIGPIPE. Returns false with errno set on failure.
inline bool SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `len` bytes, restarting on EINTR. Returns 1 on success, 0 on a
// clean EOF *before the first byte* (peer closed at a message boundary), and -1
// on error or an EOF mid-buffer (a torn frame).
inline int RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (n == 0) {
      return got == 0 ? 0 : -1;  // clean close vs. torn frame
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

// One length-prefixed frame out. Length is big-endian so the wire format is
// byte-order independent across machines — this is the backend that leaves the
// machine.
inline bool SendFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    errno = EMSGSIZE;
    return false;
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {static_cast<unsigned char>(n >> 24),
                             static_cast<unsigned char>(n >> 16),
                             static_cast<unsigned char>(n >> 8),
                             static_cast<unsigned char>(n)};
  return SendAll(fd, header, sizeof(header)) &&
         SendAll(fd, payload.data(), payload.size());
}

// One frame in. Returns 1 with `payload` filled, 0 on clean EOF at a frame
// boundary, and -1 on error, torn frame, or a declared length past
// kMaxFramePayload (garbage prefix / corrupted header — close the connection).
inline int RecvFrame(int fd, std::string* payload) {
  unsigned char header[4];
  const int got = RecvAll(fd, header, sizeof(header));
  if (got <= 0) {
    return got;
  }
  const uint32_t n = (static_cast<uint32_t>(header[0]) << 24) |
                     (static_cast<uint32_t>(header[1]) << 16) |
                     (static_cast<uint32_t>(header[2]) << 8) |
                     static_cast<uint32_t>(header[3]);
  if (n > kMaxFramePayload) {
    return -1;
  }
  payload->resize(n);
  if (n == 0) {
    return 1;
  }
  return RecvAll(fd, payload->data(), n) == 1 ? 1 : -1;
}

}  // namespace tsvd::fleet::wire

#endif  // SRC_FLEET_WIRE_H_
