// Fleet transport abstraction (DESIGN.md §13).
//
// The coordinator/agent protocol is pure request/response over JSON documents, so
// the wire is abstracted behind two tiny interfaces and an address scheme.
// Three backends ship today:
//
//   "uds:<path>"  Unix-domain stream socket. One listener, one thread per accepted
//                 connection, newline-delimited compact JSON (the campaign Json
//                 model escapes control characters, so a document never contains a
//                 raw newline). The low-latency backend; what tsvd_fleet defaults
//                 to.
//
//   "dir:<path>"  File-based queue: requests are files atomically renamed into
//                 <path>/req/, responses into <path>/resp/, matched by file name.
//                 Survives on filesystems where sockets are unavailable (some
//                 containers, network mounts) and leaves an inspectable on-disk
//                 trace; higher latency (exponential-backoff polling).
//
//   "tcp:<host>:<port>[?backlog=N]"
//                 TCP stream socket with length-prefixed frames — the backend
//                 that leaves the machine (DESIGN.md §14, transport_tcp.h).
//
// Clients retry connection establishment — agents may start before the coordinator
// listens — but a Call on an established exchange fails rather than retries, so a
// lost coordinator surfaces as an error the caller's retry policy can act on
// (agents re-send idempotently under nonces; see protocol.h). Every transport
// error string names the failing endpoint and carries the errno cause.
//
// For deterministic network-fault injection around any client backend, see
// chaos_transport.h.
#ifndef SRC_FLEET_TRANSPORT_H_
#define SRC_FLEET_TRANSPORT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/campaign/json.h"

namespace tsvd::fleet {

// Server-side request handler. Invoked on a transport service thread (possibly
// several concurrently); must be thread-safe and return the response document.
using RequestHandler = std::function<campaign::Json(const campaign::Json& request)>;

class TransportServer {
 public:
  virtual ~TransportServer() = default;

  // Starts serving. Returns false (with `error` set) when the endpoint cannot be
  // created. Handler invocations may begin before Start returns.
  virtual bool Start(RequestHandler handler, std::string* error) = 0;

  // Stops accepting, severs live exchanges, and joins every service thread. No
  // handler invocation is in flight after Stop returns. Idempotent.
  virtual void Stop() = 0;
};

class TransportClient {
 public:
  virtual ~TransportClient() = default;

  // One request/response exchange. Establishes the connection lazily, retrying up
  // to `connect_timeout_ms` (the coordinator may not be listening yet). Returns
  // false with `error` set on failure; the next Call starts a fresh connection.
  virtual bool Call(const campaign::Json& request, campaign::Json* response,
                    std::string* error) = 0;

  virtual void set_connect_timeout_ms(int ms) = 0;
};

// Factories keyed by the address scheme ("uds:" | "dir:" | "tcp:"). Return null
// with `error` set for an unknown scheme or an unusable address.
std::unique_ptr<TransportServer> MakeTransportServer(const std::string& address,
                                                     std::string* error);
std::unique_ptr<TransportClient> MakeTransportClient(const std::string& address,
                                                     std::string* error);

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_TRANSPORT_H_
