#include "src/fleet/transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/fleet/transport_tcp.h"
#include "src/fleet/wire.h"
#include "src/io/vfs.h"

namespace tsvd::fleet {
namespace {

using campaign::Json;

constexpr char kUdsScheme[] = "uds:";
constexpr char kDirScheme[] = "dir:";
constexpr char kTcpScheme[] = "tcp:";

bool HasScheme(const std::string& address, const char* scheme) {
  return address.rfind(scheme, 0) == 0;
}

// ---------------------------------------------------------------------------
// Unix-domain-socket backend: newline-delimited compact JSON over a stream
// socket, one service thread per connection. Byte movement shares the
// EINTR-safe loops in wire.h with the TCP backend.
// ---------------------------------------------------------------------------

bool SendAll(int fd, const std::string& data) {
  return wire::SendAll(fd, data.data(), data.size());
}

// Reads from `fd` into `buffer` until it holds a full '\n'-terminated line;
// extracts that line (newline stripped) into `line`. False on EOF/error.
bool ReadLine(int fd, std::string* buffer, std::string* line) {
  while (true) {
    const size_t pos = buffer->find('\n');
    if (pos != std::string::npos) {
      line->assign(*buffer, 0, pos);
      buffer->erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

class UdsServer : public TransportServer {
 public:
  explicit UdsServer(std::string path) : path_(std::move(path)) {}
  ~UdsServer() override { Stop(); }

  bool Start(RequestHandler handler, std::string* error) override {
    sockaddr_un addr{};
    if (path_.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long: " + path_;
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(path_.c_str());  // a previous server's stale endpoint
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0) {
      *error = "bind/listen " + path_ + ": " + std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    handler_ = std::move(handler);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  void Stop() override {
    if (listen_fd_ < 0) {
      return;
    }
    stopping_.store(true, std::memory_order_relaxed);
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int fd : conn_fds_) {
        ::shutdown(fd, SHUT_RDWR);
      }
    }
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    conn_threads_.clear();
    conn_fds_.clear();
    ::unlink(path_.c_str());
  }

 private:
  void AcceptLoop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;  // shutdown (or a fatal accept error): stop serving
      }
      std::lock_guard<std::mutex> lock(mu_);
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
    }
  }

  void ServeConnection(int fd) {
    std::string buffer, line;
    while (!stopping_.load(std::memory_order_relaxed) &&
           ReadLine(fd, &buffer, &line)) {
      Json request;
      Json response;
      if (Json::Parse(line, &request)) {
        response = handler_(request);
      } else {
        response = Json::MakeObject();
        response.Set("type", "error");
        response.Set("error", "unparseable request");
      }
      if (!SendAll(fd, response.Dump() + "\n")) {
        break;
      }
    }
    ::close(fd);
  }

  const std::string path_;
  RequestHandler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

class UdsClient : public TransportClient {
 public:
  explicit UdsClient(std::string path) : path_(std::move(path)) {}
  ~UdsClient() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  void set_connect_timeout_ms(int ms) override { connect_timeout_ms_ = ms; }

  bool Call(const Json& request, Json* response, std::string* error) override {
    if (fd_ < 0 && !Connect(error)) {
      return false;
    }
    std::string line;
    errno = 0;
    if (!SendAll(fd_, request.Dump() + "\n") ||
        !ReadLine(fd_, &buffer_, &line)) {
      const int err = errno;  // captured before close can overwrite it
      // Sever the exchange: the next Call reconnects from scratch.
      ::close(fd_);
      fd_ = -1;
      buffer_.clear();
      *error = "coordinator connection lost (" + path_ + "): " +
               (err != 0 ? std::strerror(err) : "connection closed by peer");
      return false;
    }
    if (!Json::Parse(line, response)) {
      *error = "unparseable response from coordinator";
      return false;
    }
    return true;
  }

 private:
  bool Connect(std::string* error) {
    sockaddr_un addr{};
    if (path_.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long: " + path_;
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    const Micros deadline =
        NowMicros() + static_cast<Micros>(connect_timeout_ms_) * 1000;
    while (true) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        fd_ = fd;
        return true;
      }
      ::close(fd);
      // The coordinator may simply not be listening yet (agents are often
      // spawned first); retry until the deadline.
      if (NowMicros() >= deadline) {
        *error = "connect " + path_ + ": " + std::strerror(errno);
        return false;
      }
      SleepMicros(20'000);
    }
  }

  const std::string path_;
  int connect_timeout_ms_ = 10'000;
  int fd_ = -1;
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// File-queue backend: requests are files renamed into <dir>/req/, responses into
// <dir>/resp/, matched by name. Writers stage in <dir>/tmp/ (same filesystem) so
// every publication is one atomic rename — a scan never sees a torn document.
// ---------------------------------------------------------------------------

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Unique-per-call exchange names: "<pid>-<counter>". The counter is process-wide
// so any number of clients in one process stay distinct.
std::atomic<uint64_t> g_exchange_counter{0};

// Idle-poll backoff for the dir backend: starts fast so a live exchange stays
// responsive, doubles while nothing arrives so an idle queue does not spin the
// CPU at a fixed interval, and resets the moment there is work.
constexpr Micros kDirPollFloorUs = 500;
constexpr Micros kDirPollCeilingUs = 20'000;

Micros NextDirPollBackoff(Micros current) {
  return current < kDirPollCeilingUs ? std::min(current * 2, kDirPollCeilingUs)
                                     : kDirPollCeilingUs;
}

// One atomic publication: stage `content` at `staged`, rename to `final_path`.
// Routed through the io::Vfs seam so storage chaos can fault the queue like any
// other durable writer. Returns 0 or the failing errno (ENOSPC on a full disk —
// callers back off rather than busy-retrying). Transport documents are
// ephemeral, so no fsync: a crash loses at most one in-flight exchange, which
// the RPC layer already treats as a timeout.
int PublishDocument(const std::string& staged, const std::string& final_path,
                    const std::string& content) {
  io::Vfs* vfs = io::ActiveVfs();
  int err = io::WriteFileThroughVfs(staged, content, /*durable=*/false);
  if (err != 0) {
    return err;
  }
  if ((err = vfs->Rename(staged, final_path)) != 0) {
    vfs->Unlink(staged);
    return err;
  }
  return 0;
}

class DirServer : public TransportServer {
 public:
  explicit DirServer(std::string dir) : dir_(std::move(dir)) {}
  ~DirServer() override { Stop(); }

  bool Start(RequestHandler handler, std::string* error) override {
    std::error_code ec;
    std::filesystem::create_directories(dir_ + "/req", ec);
    std::filesystem::create_directories(dir_ + "/resp", ec);
    std::filesystem::create_directories(dir_ + "/tmp", ec);
    if (ec) {
      *error = "cannot create queue directories under " + dir_ + ": " +
               ec.message();
      return false;
    }
    handler_ = std::move(handler);
    running_ = true;
    poll_thread_ = std::thread([this] { PollLoop(); });
    return true;
  }

  void Stop() override {
    if (!running_) {
      return;
    }
    stopping_.store(true, std::memory_order_relaxed);
    if (poll_thread_.joinable()) {
      poll_thread_.join();
    }
    running_ = false;
  }

 private:
  void PollLoop() {
    const std::string req_dir = dir_ + "/req";
    Micros idle_backoff_us = kDirPollFloorUs;
    while (!stopping_.load(std::memory_order_relaxed)) {
      bool served = false;
      std::error_code ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(req_dir, ec)) {
        if (!entry.is_regular_file(ec)) {
          continue;
        }
        const std::string name = entry.path().filename().string();
        std::string text;
        if (!ReadWholeFile(entry.path().string(), &text)) {
          continue;
        }
        std::filesystem::remove(entry.path(), ec);
        Json request;
        Json response;
        if (Json::Parse(text, &request)) {
          response = handler_(request);
        } else {
          response = Json::MakeObject();
          response.Set("type", "error");
          response.Set("error", "unparseable request");
        }
        // Publish the response with the request's name via the same
        // stage-then-rename dance the client used. On failure (e.g. ENOSPC)
        // `served` stays false so the loop falls into the idle backoff below
        // instead of busy-spinning against a full disk; the client sees a
        // timeout and retries or reports.
        const std::string staged = dir_ + "/tmp/resp-" + name;
        if (PublishDocument(staged, dir_ + "/resp/" + name,
                            response.Dump()) == 0) {
          served = true;
        }
      }
      if (served) {
        idle_backoff_us = kDirPollFloorUs;
      } else {
        SleepMicros(idle_backoff_us);
        idle_backoff_us = NextDirPollBackoff(idle_backoff_us);
      }
    }
  }

  const std::string dir_;
  RequestHandler handler_;
  bool running_ = false;
  std::atomic<bool> stopping_{false};
  std::thread poll_thread_;
};

class DirClient : public TransportClient {
 public:
  explicit DirClient(std::string dir) : dir_(std::move(dir)) {}

  void set_connect_timeout_ms(int ms) override { connect_timeout_ms_ = ms; }

  bool Call(const Json& request, Json* response, std::string* error) override {
    std::error_code ec;
    std::filesystem::create_directories(dir_ + "/req", ec);
    std::filesystem::create_directories(dir_ + "/resp", ec);
    std::filesystem::create_directories(dir_ + "/tmp", ec);
    const std::string name =
        std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
        std::to_string(g_exchange_counter.fetch_add(1, std::memory_order_relaxed));
    const std::string staged = dir_ + "/tmp/req-" + name;
    const Micros deadline =
        NowMicros() + static_cast<Micros>(connect_timeout_ms_) * 1000;
    // Publish with exponential backoff on ENOSPC: a full disk is usually a
    // transient shared-queue condition (the server unlinks served requests), so
    // retrying after a pause beats failing the exchange — but never retry
    // other errors, and never past the deadline.
    Micros backoff_us = kDirPollFloorUs;
    for (;;) {
      const int err = PublishDocument(staged, dir_ + "/req/" + name,
                                      request.Dump());
      if (err == 0) {
        break;
      }
      if (err != ENOSPC || NowMicros() >= deadline) {
        *error = "cannot publish request under " + dir_ + ": " +
                 std::strerror(err);
        return false;
      }
      SleepMicros(backoff_us);
      backoff_us = NextDirPollBackoff(backoff_us);
    }
    // Await the response file with the same exponential idle backoff the server
    // polls with. The server answers promptly once it is up, so the connect
    // timeout doubles as the response deadline.
    const std::string resp_path = dir_ + "/resp/" + name;
    std::string text;
    backoff_us = kDirPollFloorUs;
    while (!ReadWholeFile(resp_path, &text)) {
      if (NowMicros() >= deadline) {
        *error = "no response from coordinator via " + dir_ + " after " +
                 std::to_string(connect_timeout_ms_) + " ms";
        return false;
      }
      SleepMicros(backoff_us);
      backoff_us = NextDirPollBackoff(backoff_us);
    }
    std::filesystem::remove(resp_path, ec);
    if (!Json::Parse(text, response)) {
      *error = "unparseable response from coordinator";
      return false;
    }
    return true;
  }

 private:
  const std::string dir_;
  int connect_timeout_ms_ = 10'000;
};

}  // namespace

std::unique_ptr<TransportServer> MakeTransportServer(const std::string& address,
                                                     std::string* error) {
  if (HasScheme(address, kUdsScheme)) {
    return std::make_unique<UdsServer>(address.substr(sizeof(kUdsScheme) - 1));
  }
  if (HasScheme(address, kDirScheme)) {
    return std::make_unique<DirServer>(address.substr(sizeof(kDirScheme) - 1));
  }
  if (HasScheme(address, kTcpScheme)) {
    return MakeTcpTransportServer(address.substr(sizeof(kTcpScheme) - 1), error);
  }
  if (error != nullptr) {
    *error = "unknown transport scheme in \"" + address +
             "\" (want uds:, dir:, or tcp:)";
  }
  return nullptr;
}

std::unique_ptr<TransportClient> MakeTransportClient(const std::string& address,
                                                     std::string* error) {
  if (HasScheme(address, kUdsScheme)) {
    return std::make_unique<UdsClient>(address.substr(sizeof(kUdsScheme) - 1));
  }
  if (HasScheme(address, kDirScheme)) {
    return std::make_unique<DirClient>(address.substr(sizeof(kDirScheme) - 1));
  }
  if (HasScheme(address, kTcpScheme)) {
    return MakeTcpTransportClient(address.substr(sizeof(kTcpScheme) - 1), error);
  }
  if (error != nullptr) {
    *error = "unknown transport scheme in \"" + address +
             "\" (want uds:, dir:, or tcp:)";
  }
  return nullptr;
}

}  // namespace tsvd::fleet
