// The tcp: transport backend (DESIGN.md §14) — the backend that leaves the
// machine.
//
//   "tcp:<host>:<port>[?backlog=N]"
//
// Server: resolves <host> (IPv4/IPv6/hostname; empty host binds the wildcard
// address), binds with SO_REUSEADDR (coordinator restarts must not wait out
// TIME_WAIT), listens with a configurable accept backlog (default 128), and
// serves one thread per accepted connection — the same shape as the uds:
// backend. Port 0 binds an ephemeral port; `bound_port()` reports it so tests
// and supervisors can publish the real endpoint.
//
// Client: connects lazily with retry until the connect deadline (agents often
// start before the coordinator listens; a refused or unreachable endpoint is
// retried, not fatal), sets TCP_NODELAY (the protocol is small request/response
// exchanges — Nagle would serialize them against delayed ACKs), and fails a
// Call on any mid-exchange error so the caller's retry policy owns re-sending.
//
// Framing is length-prefixed (src/fleet/wire.h), not newline-delimited: a real
// network can truncate a message mid-byte, and a length prefix turns any
// truncation into a detectable short read instead of a silently concatenated
// document. All errors carry errno text.
//
// These factories are internal to the transport layer; user code goes through
// MakeTransportServer / MakeTransportClient with a "tcp:" address.
#ifndef SRC_FLEET_TRANSPORT_TCP_H_
#define SRC_FLEET_TRANSPORT_TCP_H_

#include <memory>
#include <string>

#include "src/fleet/transport.h"

namespace tsvd::fleet {

// `hostport` is the address with the "tcp:" scheme already stripped:
// "<host>:<port>[?backlog=N]". Returns null with `error` set on a malformed
// address; resolution/bind errors surface from Start()/Call() with errno text.
std::unique_ptr<TransportServer> MakeTcpTransportServer(
    const std::string& hostport, std::string* error);
std::unique_ptr<TransportClient> MakeTcpTransportClient(
    const std::string& hostport, std::string* error);

}  // namespace tsvd::fleet

#endif  // SRC_FLEET_TRANSPORT_TCP_H_
