#include "src/fleet/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/campaign/run_executor.h"
#include "src/campaign/sinks.h"
#include "src/fleet/protocol.h"
#include "src/io/chaos_fs.h"
#include "src/sandbox/outcome_codec.h"

namespace tsvd::fleet {

using campaign::CampaignResult;
using campaign::Json;
using campaign::RunOutcome;
using campaign::RunStatus;

FleetCoordinator::FleetCoordinator(FleetOptions options)
    : options_(std::move(options)) {}

FleetCoordinator::~FleetCoordinator() { Shutdown(); }

void FleetCoordinator::Shutdown() {
  if (federator_ != nullptr) {
    federator_->Stop();
    federator_.reset();
  }
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
}

FleetStats FleetCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FederationStats FleetCoordinator::federation_stats() const {
  return federator_ != nullptr ? federator_->stats() : FederationStats();
}

namespace {

std::string AgentName(const Json& request) {
  const Json* agent = request.Find("agent");
  return agent != nullptr && agent->is_string() ? agent->as_string() : "";
}

uint64_t RequestNonce(const Json& request) {
  const Json* nonce = request.Find("nonce");
  return nonce != nullptr && nonce->is_number() && nonce->as_int() > 0
             ? static_cast<uint64_t>(nonce->as_int())
             : 0;
}

}  // namespace

Json FleetCoordinator::Handle(const Json& request) {
  const Json* type = request.Find("type");
  const std::string kind =
      type != nullptr && type->is_string() ? type->as_string() : "";
  if (kind == "hello") {
    return HandleHello(request);
  }
  if (kind == "heartbeat") {
    return HandleHeartbeat(request);
  }
  if (kind == "lease" || kind == "result") {
    // At-most-once gate (protocol.h): a replay of the agent's latest nonce —
    // its retry after a lost response, or a network-duplicated delivery — is
    // answered from the cache without re-entering the handler, so it cannot
    // grant a second lease or publish twice.
    const std::string agent = AgentName(request);
    const uint64_t nonce = RequestNonce(request);
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_contact_us_ = NowMicros();
      AgentInfo& info = agents_[agent];
      info.last_seen_us = last_contact_us_;
      if (nonce != 0 && info.has_cached && info.cached_nonce == nonce) {
        ++stats_.duplicate_requests;
        return info.cached_response;
      }
    }
    Json resp = kind == "lease" ? HandleLease(request) : HandleResult(request);
    if (nonce != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      AgentInfo& info = agents_[agent];
      info.cached_nonce = nonce;
      info.cached_response = resp;
      info.has_cached = true;
    }
    return resp;
  }
  Json resp = Json::MakeObject();
  if (HandleStoreRequest(&store_, request, &resp)) {
    return resp;  // federation peers are not agents: no liveness bookkeeping
  }
  resp.Set("type", "error");
  resp.Set("error", "unknown request type \"" + kind + "\"");
  return resp;
}

Json FleetCoordinator::HandleHeartbeat(const Json& request) {
  Json resp = Json::MakeObject();
  std::lock_guard<std::mutex> lock(mu_);
  last_contact_us_ = NowMicros();
  AgentInfo& info = agents_[AgentName(request)];
  info.last_seen_us = last_contact_us_;
  // Eviction is sticky until the next hello: a heartbeat arriving after the
  // verdict (the partition healed) tells the agent, not the other way around.
  if (info.evicted) {
    resp.Set("type", "evicted");
    return resp;
  }
  if (finished_ || interrupted_) {
    resp.Set("type", "done");
    resp.Set("interrupted", interrupted_);
    return resp;
  }
  resp.Set("type", "beat");
  return resp;
}

Json FleetCoordinator::HandleHello(const Json& request) {
  Json resp = Json::MakeObject();
  // Authentication comes before everything else — an unauthenticated caller
  // learns nothing about the fleet, not even which protocol version it speaks.
  if (!options_.auth_token.empty()) {
    const Json* token = request.Find("auth_token");
    const std::string presented =
        token != nullptr && token->is_string() ? token->as_string() : "";
    if (!ConstantTimeEquals(presented, options_.auth_token)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hellos_rejected_auth;
      }
      resp.Set("type", "error");
      resp.Set("error",
               "fleet join rejected: missing or invalid auth token "
               "(coordinator runs with --auth_token)");
      return resp;
    }
  }
  const Json* protocol = request.Find("protocol_version");
  if (protocol == nullptr || !protocol->is_number() ||
      protocol->as_int() != kFleetProtocolVersion) {
    resp.Set("type", "error");
    resp.Set("error",
             "fleet protocol version mismatch: agent speaks " +
                 (protocol != nullptr && protocol->is_number()
                      ? std::to_string(protocol->as_int())
                      : std::string("(none)")) +
                 ", coordinator speaks " + std::to_string(kFleetProtocolVersion));
    return resp;
  }
  const Json* codec = request.Find("codec_version");
  if (codec == nullptr || !codec->is_number() ||
      codec->as_int() != sandbox::kRunOutcomeCodecVersion) {
    resp.Set("type", "error");
    resp.Set("error",
             "run outcome codec version mismatch: agent speaks " +
                 (codec != nullptr && codec->is_number()
                      ? std::to_string(codec->as_int())
                      : std::string("(none)")) +
                 ", coordinator speaks " +
                 std::to_string(sandbox::kRunOutcomeCodecVersion) +
                 " — coordinator and agent builds must match");
    return resp;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_contact_us_ = NowMicros();
    AgentInfo& info = agents_[AgentName(request)];
    if (info.last_seen_us == 0) {
      // Distinct names only: a retried or duplicated hello must not recount.
      ++stats_.agents_joined;
    }
    info.last_seen_us = last_contact_us_;
    info.evicted = false;  // a fresh join wipes any earlier eviction verdict
  }
  resp.Set("type", "setup");
  resp.Set("options", EncodeCampaignOptions(options_.campaign));
  resp.Set("corpus_size", static_cast<int64_t>(corpus_names_.size()));
  return resp;
}

Json FleetCoordinator::HandleLease(const Json& request) {
  const Json* have = request.Find("trap_version");
  const uint64_t agent_trap_version =
      have != nullptr && have->is_number() ? static_cast<uint64_t>(have->as_int())
                                           : 0;
  const std::string agent = AgentName(request);
  Json resp = Json::MakeObject();
  uint64_t lease_id = 0;
  int module_index = -1;
  int round = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_contact_us_ = NowMicros();
    // Eviction outranks completion: an evicted agent must learn its verdict (and
    // exit with the distinct status) even when the campaign also happens to be
    // over by the time it reconnects.
    if (agents_[agent].evicted) {
      resp.Set("type", "evicted");
      return resp;
    }
    if (finished_ || interrupted_) {
      // Campaign over (or draining after a signal): agents exit. A drain lets an
      // agent's in-flight job still publish — HandleResult keeps accepting while
      // its lease is open.
      resp.Set("type", "done");
      resp.Set("interrupted", interrupted_);
      return resp;
    }
    if (round_active_) {
      const Micros now = NowMicros();
      size_t grant_slot = slots_.size();
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].phase == JobPhase::kPending) {
          grant_slot = i;
          break;
        }
      }
      if (grant_slot == slots_.size()) {
        // No virgin job: steal the first lease past its deadline (its agent was
        // SIGKILLed, wedged, or partitioned). The original lease stays open — if
        // its holder does publish first, that result still wins.
        for (size_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i].phase == JobPhase::kLeased &&
              slots_[i].lease_deadline_us < now) {
            grant_slot = i;
            ++stats_.leases_stolen;
            break;
          }
        }
      }
      if (grant_slot < slots_.size()) {
        JobSlot& slot = slots_[grant_slot];
        lease_id = next_lease_++;
        slot.phase = JobPhase::kLeased;
        slot.lease_deadline_us =
            now + static_cast<Micros>(options_.lease_timeout_ms) * 1000;
        open_leases_[lease_id] = OpenLease{grant_slot, agent};
        ++stats_.leases_granted;
        module_index = slot.module_index;
        round = round_;
      }
    }
  }
  if (lease_id == 0) {
    resp.Set("type", "wait");
    resp.Set("wait_ms", options_.wait_hint_ms);
    return resp;
  }
  resp.Set("type", "job");
  resp.Set("lease", lease_id);
  resp.Set("round", round);
  resp.Set("module_index", module_index);
  uint64_t version = 0;
  std::string traps;
  if (store_.SerializeIfStale(agent_trap_version, &version, &traps)) {
    resp.Set("trap_version", version);
    resp.Set("traps", traps);
  } else {
    resp.Set("trap_version", agent_trap_version);
  }
  return resp;
}

Json FleetCoordinator::HandleResult(const Json& request) {
  Json resp = Json::MakeObject();
  const Json* lease = request.Find("lease");
  const Json* outcome_doc = request.Find("outcome");
  if (lease == nullptr || !lease->is_number() || outcome_doc == nullptr) {
    resp.Set("type", "error");
    resp.Set("error", "malformed result publish");
    return resp;
  }
  RunOutcome outcome;
  std::string codec_error;
  if (!sandbox::DecodeRunOutcome(*outcome_doc, &outcome, &codec_error)) {
    resp.Set("type", "error");
    resp.Set("error", "undecodable outcome: " + codec_error);
    return resp;
  }
  const uint64_t lease_id = static_cast<uint64_t>(lease->as_int());
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_contact_us_ = NowMicros();
    const auto it = open_leases_.find(lease_id);
    if (it != open_leases_.end()) {
      JobSlot& slot = slots_[it->second.slot];
      // Idempotent acceptance: the first publish for a slot wins; anything later
      // — a re-executed stolen job, a retransmit — is acknowledged and
      // discarded, so no run can ever double-count into stats, the journal, or
      // the bug manager.
      if (slot.phase == JobPhase::kLeased &&
          outcome.module_index == slot.module_index && outcome.round == round_) {
        if (outcome.module.empty() && slot.module_index >= 0 &&
            slot.module_index < static_cast<int>(corpus_names_.size())) {
          outcome.module = corpus_names_[slot.module_index];
        }
        slot.outcome = outcome;
        slot.phase = JobPhase::kDone;
        accepted = true;
        // Every lease for this slot (original + stolen) is now dead.
        const size_t done_slot = it->second.slot;
        for (auto lease_it = open_leases_.begin();
             lease_it != open_leases_.end();) {
          if (lease_it->second.slot == done_slot) {
            lease_it = open_leases_.erase(lease_it);
          } else {
            ++lease_it;
          }
        }
      }
    }
    if (!accepted) {
      ++stats_.duplicate_results;
    }
  }
  if (accepted) {
    // The ledger commit point, mirroring the single-process completion callback:
    // fsync'd before the ack, outside the coordinator lock. done_count_ advances
    // only after the record is durable, so the round barrier can never commit a
    // round record ahead of one of its run records.
    if (journal_.is_open() && !journal_.AppendRun(outcome)) {
      // The journal fail-closed (one fresh-handle retry already happened inside
      // AppendRun). The result itself is still accepted — only its replay
      // record is gone; the degradation policy decides what happens next.
      ApplyStorageErrno(journal_.last_errno());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_count_;
    }
    round_cv_.notify_all();
  }
  resp.Set("type", "ack");
  resp.Set("accepted", accepted);
  return resp;
}

void FleetCoordinator::ApplyStorageErrno(int err) {
  if (err == ENOSPC) {
    storage_drain_.store(true, std::memory_order_relaxed);
  } else {
    journal_lost_.store(true, std::memory_order_relaxed);
  }
}

std::vector<std::string> FleetCoordinator::SweepEvictionsLocked(Micros now) {
  std::vector<std::string> newly_evicted;
  if (options_.heartbeat_timeout_ms <= 0) {
    return newly_evicted;
  }
  const Micros budget = static_cast<Micros>(options_.heartbeat_timeout_ms) * 1000;
  for (auto& [name, info] : agents_) {
    if (info.evicted || info.last_seen_us == 0 ||
        now - info.last_seen_us <= budget) {
      continue;
    }
    info.evicted = true;
    ++stats_.agents_evicted;
    newly_evicted.push_back(name);
    // The evicted agent's leases become stealable NOW: a fleet must not idle
    // out the full lease_timeout_ms for an agent already judged dead. The
    // leases stay open — if the agent was merely partitioned and its publish
    // races the steal, whichever lands first wins, exactly as for any steal.
    for (const auto& [lease_id, lease] : open_leases_) {
      if (lease.agent == name) {
        slots_[lease.slot].lease_deadline_us = 0;
      }
    }
  }
  return newly_evicted;
}

size_t FleetCoordinator::LiveOpenLeasesLocked() const {
  size_t live = 0;
  for (const auto& [lease_id, lease] : open_leases_) {
    const auto it = agents_.find(lease.agent);
    if (it == agents_.end() || !it->second.evicted) {
      ++live;
    }
  }
  return live;
}

CampaignResult FleetCoordinator::Run() {
  const campaign::CampaignOptions& opt = options_.campaign;
  CampaignResult result;
  result.options = opt;

  const std::vector<workload::ModuleSpec> corpus =
      campaign::BuildCampaignCorpus(opt).modules;
  corpus_names_.clear();
  corpus_names_.reserve(corpus.size());
  for (const workload::ModuleSpec& m : corpus) {
    corpus_names_.push_back(m.name);
  }

  const bool persist = !opt.out_dir.empty();
  if (opt.resume && !persist) {
    result.error = "resume requires an output directory (out_dir)";
    return result;
  }
  if (persist) {
    std::filesystem::create_directories(opt.out_dir);
    result.trap_path =
        (std::filesystem::path(opt.out_dir) / "traps.tsvd").string();
  }

  campaign::BugReportMgr mgr;
  TrapFile merged;
  std::vector<char> quarantined(corpus.size(), 0);
  const int rounds = opt.rounds > 0 ? opt.rounds : 1;
  const campaign::JournalHeader header =
      campaign::MakeJournalHeader(opt, corpus.size());

  std::vector<RunOutcome> pending;
  int start_round = 1;
  bool already_done = false;
  uint64_t last_snapshot_mark = 0;

  if (persist) {
    const std::string journal_path = campaign::CampaignJournal::PathIn(opt.out_dir);
    result.journal_path = journal_path;
    bool fresh = true;
    if (opt.resume) {
      campaign::ResumePlan plan;
      if (!campaign::LoadResumePlan(opt.out_dir, header, corpus.size(),
                                    opt.stop_when_converged, &plan)) {
        result.error = plan.error;
        return result;
      }
      if (!plan.fresh) {
        fresh = false;
        result.rounds = plan.completed_rounds;
        result.resumed_rounds = static_cast<int>(plan.completed_rounds.size());
        result.resumed_runs = plan.resumed_runs;
        start_round = plan.start_round;
        already_done = plan.already_done;
        result.converged = plan.converged;
        last_snapshot_mark = campaign::ApplyResumePlan(
            &plan, corpus, &mgr, &merged, &quarantined, &result.outcomes,
            &result.false_positives);
        pending = std::move(plan.pending);
      }
    }
    if (!journal_.Open(journal_path, header, /*truncate=*/fresh,
                       /*fsync=*/DurableFileSyncEnabled())) {
      result.error = "failed to open campaign journal at " + journal_path;
      if (journal_.last_errno() != 0) {
        result.error += ": " + std::string(std::strerror(journal_.last_errno()));
      }
      return result;
    }
    journal_.set_replayed_run_records(result.resumed_runs);
  }
  store_.Restore(std::move(merged));

  std::string transport_error;
  server_ = MakeTransportServer(options_.address, &transport_error);
  if (server_ == nullptr ||
      !server_->Start([this](const Json& req) { return Handle(req); },
                      &transport_error)) {
    server_.reset();
    journal_.Close();
    result.error = "transport: " + transport_error;
    return result;
  }
  if (!options_.federation.peers.empty()) {
    federator_ = std::make_unique<StoreFederator>(&store_, options_.federation);
    std::string federation_error;
    if (!federator_->Start(&federation_error)) {
      federator_.reset();
      Shutdown();
      journal_.Close();
      result.error = "federation: " + federation_error;
      return result;
    }
  }

  const auto flush_reports = [&]() {
    if (!persist) {
      return;
    }
    campaign::CampaignMeta meta;
    meta.detector = opt.detector;
    meta.num_modules = static_cast<int>(corpus.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      meta.workers = static_cast<int>(stats_.agents_joined);
    }
    meta.rounds_requested = rounds;
    meta.rounds_executed = static_cast<int>(result.rounds.size());
    meta.converged = result.converged;
    meta.interrupted = result.interrupted;
    meta.sandbox = opt.sandbox.enabled;
    meta.scale = opt.scale;
    meta.seed = opt.seed;
    meta.durability =
        journal_lost_.load(std::memory_order_relaxed) ? "degraded" : "ok";
    if (const io::ChaosFs* chaos = io::InstalledChaosFs()) {
      meta.storage_faults = chaos->stats().Classes();
    }
    const std::filesystem::path dir(opt.out_dir);
    const std::string json_path = (dir / "campaign.json").string();
    const std::string sarif_path = (dir / "campaign.sarif").string();
    const std::vector<campaign::BugReportMgr::UniqueBug> bugs = mgr.Bugs();
    int sink_err = 0;
    if (campaign::WriteFileAtomic(
            json_path,
            campaign::RenderJson(meta, result.rounds, bugs, result.outcomes),
            &sink_err)) {
      result.json_path = json_path;
    } else if (sink_err == ENOSPC) {
      storage_drain_.store(true, std::memory_order_relaxed);
    }
    if (campaign::WriteFileAtomic(
            sarif_path, campaign::RenderSarif(meta, bugs, result.outcomes),
            &sink_err)) {
      result.sarif_path = sarif_path;
    } else if (sink_err == ENOSPC) {
      storage_drain_.store(true, std::memory_order_relaxed);
    }
  };

  // Disk-full drains exactly like a delivered signal: the drain loop below
  // polls this closure and stops granting leases on the first true.
  const std::function<bool()> interrupt = [&]() {
    return storage_drain_.load(std::memory_order_relaxed) ||
           (opt.interrupt && opt.interrupt());
  };
  bool fleet_dead = false;
  for (int round = start_round; !already_done && round <= rounds; ++round) {
    if (interrupt()) {
      result.interrupted = true;
      break;
    }
    std::vector<RunOutcome> replayed;
    if (round == start_round && !pending.empty()) {
      replayed = std::move(pending);
      pending.clear();
    }

    // Stage the round's job table. Replayed ledger records (resume of an
    // interrupted round) enter as already-done slots: reconstructed, never
    // re-executed, never re-journaled.
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_.clear();
      open_leases_.clear();
      done_count_ = 0;
      round_ = round;
      for (size_t m = 0; m < corpus.size(); ++m) {
        if (quarantined[m]) {
          continue;
        }
        JobSlot slot;
        slot.module_index = static_cast<int>(m);
        for (RunOutcome& o : replayed) {
          if (o.module_index == static_cast<int>(m)) {
            slot.phase = JobPhase::kDone;
            slot.replayed = true;
            slot.outcome = std::move(o);
            ++done_count_;
            break;
          }
        }
        slots_.push_back(std::move(slot));
      }
      if (slots_.empty()) {
        break;
      }
      round_active_ = true;
      last_contact_us_ = NowMicros();
    }
    round_cv_.notify_all();

    const Micros round_start = NowMicros();
    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Journals an eviction verdict without holding the coordinator lock over
      // the fsync — handlers must never queue behind ledger I/O.
      const auto journal_evictions = [&](std::vector<std::string> names) {
        if (names.empty() || !journal_.is_open()) {
          return;
        }
        lock.unlock();
        for (const std::string& name : names) {
          journal_.AppendEvent(
              "agent-evicted",
              name + " silent for over " +
                  std::to_string(options_.heartbeat_timeout_ms) +
                  " ms in round " + std::to_string(round) +
                  "; its leases are released for stealing");
        }
        lock.lock();
      };
      while (done_count_ < slots_.size()) {
        round_cv_.wait_for(lock, std::chrono::milliseconds(50));
        journal_evictions(SweepEvictionsLocked(NowMicros()));
        if (interrupt() && !interrupted_) {
          // Graceful drain: stop granting (agents get "done" on their next
          // lease), let in-flight jobs publish, then stop waiting for the rest.
          // Only leases held by live agents are worth waiting on — an evicted
          // holder's publish window already closed with its eviction.
          interrupted_ = true;
          const Micros drain_deadline =
              NowMicros() + static_cast<Micros>(options_.lease_timeout_ms) * 1000;
          while (LiveOpenLeasesLocked() > 0 && NowMicros() < drain_deadline) {
            round_cv_.wait_for(lock, std::chrono::milliseconds(50));
            journal_evictions(SweepEvictionsLocked(NowMicros()));
          }
          drained = true;
          break;
        }
        if (options_.agent_idle_timeout_ms > 0 && done_count_ < slots_.size() &&
            NowMicros() - last_contact_us_ >
                static_cast<Micros>(options_.agent_idle_timeout_ms) * 1000) {
          fleet_dead = true;
          break;
        }
      }
      round_active_ = false;
    }

    if (fleet_dead) {
      result.error = "fleet stalled: no agent contact for " +
                     std::to_string(options_.agent_idle_timeout_ms) +
                     " ms with runs still pending — all agents presumed dead; "
                     "rerun with resume to continue";
      break;
    }

    // Round processing, in module order — identical to the single-process
    // campaign's barrier, so every artifact is deterministic for a given seed no
    // matter which agents ran which jobs in what order.
    campaign::RoundStats stats;
    stats.round = round;
    stats.wall_us = NowMicros() - round_start;
    stats.interrupted = drained;
    TrapFile round_traps;
    std::vector<JobSlot> slots;
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots = std::move(slots_);
      slots_.clear();
      // Any lease still open (a drain cut its job short, or a straggler is about
      // to publish a stolen job's duplicate) now dangles; kill it so a late
      // publish is acked as a duplicate instead of touching the harvested round.
      open_leases_.clear();
    }
    for (JobSlot& slot : slots) {
      if (slot.phase != JobPhase::kDone) {
        continue;  // drained before this job finished: resume re-executes it
      }
      RunOutcome& outcome = slot.outcome;
      if (outcome.status == RunStatus::kSkipped) {
        continue;
      }
      ++stats.runs;
      if (outcome.status == RunStatus::kCrashed) {
        ++stats.crashed;
        if (outcome.killed_by_signal != 0) {
          ++stats.killed_by_signal;
        }
      }
      if (outcome.status == RunStatus::kTimedOut) {
        ++stats.timed_out;
      }
      if (outcome.attempts > 1) {
        ++stats.retried;
      }
      if (outcome.quarantined) {
        ++stats.quarantined;
        if (outcome.module_index >= 0 &&
            outcome.module_index < static_cast<int>(quarantined.size())) {
          quarantined[outcome.module_index] = 1;
        }
      }
      stats.delays_injected += outcome.delays_injected;
      stats.delays_early_woken += outcome.delays_early_woken;
      stats.delays_aborted_stall += outcome.delays_aborted_stall;
      stats.delays_skipped_budget += outcome.delays_skipped_budget;
      if (outcome.runtime_disabled) {
        ++stats.runtime_disabled;
      }
      stats.retrapped_imported += outcome.retrapped_imported;
      result.false_positives += outcome.false_positives;
      for (const campaign::BugObservation& obs : outcome.observations) {
        if (mgr.Ingest(obs)) {
          ++stats.new_unique_bugs;
        }
      }
      round_traps.Merge(outcome.traps);
      result.outcomes.push_back(std::move(outcome));
    }
    stats.trap_pairs_after = store_.CommitRound(round_traps);
    result.rounds.push_back(stats);

    if (drained) {
      result.interrupted = true;
      break;
    }

    bool trap_store_committed = true;
    if (persist) {
      int save_err = 0;
      if (!store_.Snapshot().SaveTo(result.trap_path, &save_err)) {
        trap_store_committed = false;
        result.trap_path.clear();
        if (save_err == ENOSPC) {
          storage_drain_.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (journal_.is_open() && trap_store_committed) {
      // Round record strictly after the trap store hit disk — and withheld
      // when the save failed, so "round record implies traps.tsvd reflects the
      // round" survives storage faults; resume re-executes the round instead.
      if (!journal_.AppendRoundComplete(stats, mgr.UniqueBugCount())) {
        ApplyStorageErrno(journal_.last_errno());
      }
      if (journal_.is_open() && opt.journal_snapshot_every > 0 &&
          journal_.run_records() - last_snapshot_mark >=
              static_cast<uint64_t>(opt.journal_snapshot_every)) {
        int snap_err = 0;
        if (campaign::SaveBugMgrSnapshot(
                campaign::CampaignJournal::SnapshotPathIn(opt.out_dir), mgr,
                journal_.run_records(), DurableFileSyncEnabled(), &snap_err)) {
          last_snapshot_mark = journal_.run_records();
        } else if (snap_err == ENOSPC) {
          storage_drain_.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (opt.stop_when_converged && stats.new_unique_bugs == 0) {
      result.converged = true;
    }
    flush_reports();
    if (result.converged) {
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    round_active_ = false;
  }
  round_cv_.notify_all();

  result.bugs = mgr.Bugs();
  result.merged_traps = store_.Snapshot();
  if (storage_drain_.load(std::memory_order_relaxed)) {
    result.disk_full = true;
    result.interrupted = true;
  }
  result.journal_degraded = journal_lost_.load(std::memory_order_relaxed);
  if (journal_.is_open() && !result.interrupted && !fleet_dead && !already_done) {
    if (!journal_.AppendCampaignComplete(result.converged)) {
      ApplyStorageErrno(journal_.last_errno());
      result.disk_full = storage_drain_.load(std::memory_order_relaxed);
      result.journal_degraded = journal_lost_.load(std::memory_order_relaxed);
    }
  }
  journal_.Close();
  flush_reports();
  return result;
}

}  // namespace tsvd::fleet
