// Instrumented Dictionary<K,V>: the C# System.Collections.Generic.Dictionary analogue
// and, per Table 1, the class involved in 55% of all bugs TSVD found.
//
// Thread-safety contract: reads (ContainsKey, TryGetValue, Get, Count) may run
// concurrently; writes (Add, Set, Remove, Clear) require exclusivity. Violations are
// *detected* at the OnCall layer; the raw operation afterwards is serialized on an
// internal latch so that a detected violation corrupts nothing — a C# Dictionary
// survives what would be UB for an unguarded std::unordered_map. The latch exists in
// baseline runs too, so overhead comparisons are apples-to-apples.
#ifndef SRC_INSTRUMENT_DICTIONARY_H_
#define SRC_INSTRUMENT_DICTIONARY_H_

#include <mutex>
#include <optional>
#include <source_location>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename K, typename V>
class Dictionary {
 public:
  using SrcLoc = std::source_location;

  Dictionary() = default;

  // ---- write set ----

  // Adds key -> value; throws if the key exists (C# Dictionary.Add semantics).
  void Add(const K& key, const V& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Dictionary.Add");
    std::lock_guard<std::mutex> latch(latch_);
    if (!map_.emplace(key, value).second) {
      throw std::invalid_argument("Dictionary.Add: key already present");
    }
  }

  // Indexer set: inserts or overwrites.
  void Set(const K& key, const V& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Dictionary.Set");
    std::lock_guard<std::mutex> latch(latch_);
    map_[key] = value;
  }

  bool Remove(const K& key, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Dictionary.Remove");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.erase(key) > 0;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Dictionary.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    map_.clear();
  }

  // ---- read set ----

  bool ContainsKey(const K& key, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Dictionary.ContainsKey");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.contains(key);
  }

  // Indexer get: throws if absent.
  V Get(const K& key, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Dictionary.Get");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      throw std::out_of_range("Dictionary.Get: key not found");
    }
    return it->second;
  }

  bool TryGetValue(const K& key, V* out, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Dictionary.TryGetValue");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Dictionary.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.size();
  }

  std::vector<K> Keys(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Dictionary.Keys");
    std::lock_guard<std::mutex> latch(latch_);
    std::vector<K> keys;
    keys.reserve(map_.size());
    for (const auto& [k, v] : map_) {
      keys.push_back(k);
    }
    return keys;
  }

 private:
  mutable std::mutex latch_;
  std::unordered_map<K, V> map_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_DICTIONARY_H_
