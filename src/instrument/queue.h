// Instrumented Queue<T> (C# System.Collections.Generic.Queue).
#ifndef SRC_INSTRUMENT_QUEUE_H_
#define SRC_INSTRUMENT_QUEUE_H_

#include <deque>
#include <mutex>
#include <optional>
#include <source_location>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename T>
class Queue {
 public:
  using SrcLoc = std::source_location;

  Queue() = default;

  // ---- write set ----

  void Enqueue(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Queue.Enqueue");
    std::lock_guard<std::mutex> latch(latch_);
    items_.push_back(value);
  }

  // C# Queue.Dequeue throws on empty; the Try variant mirrors common guard usage.
  std::optional<T> TryDequeue(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Queue.Dequeue");
    std::lock_guard<std::mutex> latch(latch_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Queue.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    items_.clear();
  }

  // ---- read set ----

  std::optional<T> Peek(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Queue.Peek");
    std::lock_guard<std::mutex> latch(latch_);
    if (items_.empty()) {
      return std::nullopt;
    }
    return items_.front();
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Queue.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return items_.size();
  }

 private:
  mutable std::mutex latch_;
  std::deque<T> items_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_QUEUE_H_
