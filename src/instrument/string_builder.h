// Instrumented StringBuilder (C# System.Text.StringBuilder): used by the
// Thunderstruck-style connection-string-buffer scenario of Table 4.
#ifndef SRC_INSTRUMENT_STRING_BUILDER_H_
#define SRC_INSTRUMENT_STRING_BUILDER_H_

#include <mutex>
#include <source_location>
#include <string>

#include "src/instrument/instrument.h"

namespace tsvd {

class StringBuilder {
 public:
  using SrcLoc = std::source_location;

  StringBuilder() = default;

  // ---- write set ----

  void Append(const std::string& text, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("StringBuilder.Append");
    std::lock_guard<std::mutex> latch(latch_);
    buffer_ += text;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("StringBuilder.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    buffer_.clear();
  }

  // ---- read set ----

  std::string ToString(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("StringBuilder.ToString");
    std::lock_guard<std::mutex> latch(latch_);
    return buffer_;
  }

  size_t Length(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("StringBuilder.Length");
    std::lock_guard<std::mutex> latch(latch_);
    return buffer_.size();
  }

 private:
  mutable std::mutex latch_;
  std::string buffer_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_STRING_BUILDER_H_
