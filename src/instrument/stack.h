// Instrumented Stack<T> (C# System.Collections.Generic.Stack).
#ifndef SRC_INSTRUMENT_STACK_H_
#define SRC_INSTRUMENT_STACK_H_

#include <mutex>
#include <optional>
#include <source_location>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename T>
class Stack {
 public:
  using SrcLoc = std::source_location;

  Stack() = default;

  // ---- write set ----

  void Push(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Stack.Push");
    std::lock_guard<std::mutex> latch(latch_);
    items_.push_back(value);
  }

  std::optional<T> TryPop(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Stack.Pop");
    std::lock_guard<std::mutex> latch(latch_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.back());
    items_.pop_back();
    return value;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("Stack.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    items_.clear();
  }

  // ---- read set ----

  std::optional<T> Peek(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Stack.Peek");
    std::lock_guard<std::mutex> latch(latch_);
    if (items_.empty()) {
      return std::nullopt;
    }
    return items_.back();
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("Stack.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return items_.size();
  }

 private:
  mutable std::mutex latch_;
  std::vector<T> items_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_STACK_H_
