// Instrumented MultiMap<K,V>: the C# Lookup/grouped-dictionary shape (one key, many
// values) that backs event-handler registries and routing tables.
#ifndef SRC_INSTRUMENT_MULTI_MAP_H_
#define SRC_INSTRUMENT_MULTI_MAP_H_

#include <mutex>
#include <source_location>
#include <unordered_map>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename K, typename V>
class MultiMap {
 public:
  using SrcLoc = std::source_location;

  MultiMap() = default;

  // ---- write set ----

  void Add(const K& key, const V& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("MultiMap.Add");
    std::lock_guard<std::mutex> latch(latch_);
    map_[key].push_back(value);
  }

  bool RemoveKey(const K& key, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("MultiMap.RemoveKey");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.erase(key) > 0;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("MultiMap.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    map_.clear();
  }

  // ---- read set ----

  std::vector<V> Get(const K& key, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("MultiMap.Get");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = map_.find(key);
    return it == map_.end() ? std::vector<V>{} : it->second;
  }

  bool ContainsKey(const K& key, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("MultiMap.ContainsKey");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.contains(key);
  }

  size_t KeyCount(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("MultiMap.KeyCount");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.size();
  }

 private:
  mutable std::mutex latch_;
  std::unordered_map<K, std::vector<V>> map_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_MULTI_MAP_H_
