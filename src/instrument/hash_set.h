// Instrumented HashSet<T> (C# System.Collections.Generic.HashSet).
#ifndef SRC_INSTRUMENT_HASH_SET_H_
#define SRC_INSTRUMENT_HASH_SET_H_

#include <mutex>
#include <source_location>
#include <unordered_set>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename T>
class HashSet {
 public:
  using SrcLoc = std::source_location;

  HashSet() = default;

  // ---- write set ----

  bool Add(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("HashSet.Add");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.insert(value).second;
  }

  bool Remove(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("HashSet.Remove");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.erase(value) > 0;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("HashSet.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    set_.clear();
  }

  void UnionWith(const std::vector<T>& other, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("HashSet.UnionWith");
    std::lock_guard<std::mutex> latch(latch_);
    set_.insert(other.begin(), other.end());
  }

  // ---- read set ----

  bool Contains(const T& value, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("HashSet.Contains");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.contains(value);
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("HashSet.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.size();
  }

 private:
  mutable std::mutex latch_;
  std::unordered_set<T> set_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_HASH_SET_H_
