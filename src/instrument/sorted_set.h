// Instrumented SortedSet<T> (C# System.Collections.Generic.SortedSet).
#ifndef SRC_INSTRUMENT_SORTED_SET_H_
#define SRC_INSTRUMENT_SORTED_SET_H_

#include <mutex>
#include <optional>
#include <set>
#include <source_location>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename T>
class SortedSet {
 public:
  using SrcLoc = std::source_location;

  SortedSet() = default;

  // ---- write set ----

  bool Add(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("SortedSet.Add");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.insert(value).second;
  }

  bool Remove(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("SortedSet.Remove");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.erase(value) > 0;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("SortedSet.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    set_.clear();
  }

  // ---- read set ----

  bool Contains(const T& value, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedSet.Contains");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.contains(value);
  }

  std::optional<T> Min(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedSet.Min");
    std::lock_guard<std::mutex> latch(latch_);
    if (set_.empty()) {
      return std::nullopt;
    }
    return *set_.begin();
  }

  std::optional<T> Max(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedSet.Max");
    std::lock_guard<std::mutex> latch(latch_);
    if (set_.empty()) {
      return std::nullopt;
    }
    return *set_.rbegin();
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedSet.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return set_.size();
  }

  std::vector<T> ToVector(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedSet.ToVector");
    std::lock_guard<std::mutex> latch(latch_);
    return std::vector<T>(set_.begin(), set_.end());
  }

 private:
  mutable std::mutex latch_;
  std::set<T> set_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_SORTED_SET_H_
