// Instrumented BitArray (C# System.Collections.BitArray): fixed-length bit vector
// whose element writes are not atomic — a classic source of "it's just one bit, it
// must be thread safe" violations.
#ifndef SRC_INSTRUMENT_BIT_ARRAY_H_
#define SRC_INSTRUMENT_BIT_ARRAY_H_

#include <mutex>
#include <source_location>
#include <stdexcept>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

class BitArray {
 public:
  using SrcLoc = std::source_location;

  explicit BitArray(size_t length) : bits_(length, false) {}

  // ---- write set ----

  void Set(size_t index, bool value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("BitArray.Set");
    std::lock_guard<std::mutex> latch(latch_);
    CheckIndex(index);
    bits_[index] = value;
  }

  void SetAll(bool value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("BitArray.SetAll");
    std::lock_guard<std::mutex> latch(latch_);
    bits_.assign(bits_.size(), value);
  }

  void Not(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("BitArray.Not");
    std::lock_guard<std::mutex> latch(latch_);
    for (size_t i = 0; i < bits_.size(); ++i) {
      bits_[i] = !bits_[i];
    }
  }

  // ---- read set ----

  bool Get(size_t index, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("BitArray.Get");
    std::lock_guard<std::mutex> latch(latch_);
    CheckIndex(index);
    return bits_[index];
  }

  size_t PopCount(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("BitArray.PopCount");
    std::lock_guard<std::mutex> latch(latch_);
    size_t n = 0;
    for (const bool b : bits_) {
      n += b ? 1 : 0;
    }
    return n;
  }

  size_t Length(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("BitArray.Length");
    std::lock_guard<std::mutex> latch(latch_);
    return bits_.size();
  }

 private:
  void CheckIndex(size_t index) const {
    if (index >= bits_.size()) {
      throw std::out_of_range("BitArray: index out of range");
    }
  }

  mutable std::mutex latch_;
  std::vector<bool> bits_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_BIT_ARRAY_H_
