// Instrumented SortedList<K,V> (C# System.Collections.Generic.SortedList).
#ifndef SRC_INSTRUMENT_SORTED_LIST_H_
#define SRC_INSTRUMENT_SORTED_LIST_H_

#include <map>
#include <mutex>
#include <source_location>
#include <stdexcept>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename K, typename V>
class SortedList {
 public:
  using SrcLoc = std::source_location;

  SortedList() = default;

  // ---- write set ----

  void Add(const K& key, const V& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("SortedList.Add");
    std::lock_guard<std::mutex> latch(latch_);
    if (!map_.emplace(key, value).second) {
      throw std::invalid_argument("SortedList.Add: key already present");
    }
  }

  void Set(const K& key, const V& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("SortedList.Set");
    std::lock_guard<std::mutex> latch(latch_);
    map_[key] = value;
  }

  bool Remove(const K& key, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("SortedList.Remove");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.erase(key) > 0;
  }

  // ---- read set ----

  bool ContainsKey(const K& key, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedList.ContainsKey");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.contains(key);
  }

  V Get(const K& key, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedList.Get");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      throw std::out_of_range("SortedList.Get: key not found");
    }
    return it->second;
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedList.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return map_.size();
  }

  std::vector<K> Keys(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("SortedList.Keys");
    std::lock_guard<std::mutex> latch(latch_);
    std::vector<K> keys;
    keys.reserve(map_.size());
    for (const auto& [k, v] : map_) {
      keys.push_back(k);
    }
    return keys;
  }

 private:
  mutable std::mutex latch_;
  std::map<K, V> map_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_SORTED_LIST_H_
