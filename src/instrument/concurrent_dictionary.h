// ConcurrentDictionary<K,V>: the thread-SAFE map of .NET's standard library — the fix
// developers apply after a TSVD report ("replacing the data-structure with a
// thread-safe version", Section 5.2). Its thread-safety contract allows any pair of
// concurrent calls, so it is NOT instrumented: there are no TSVD points to check, and
// code migrated to it stops producing reports (tests verify this).
#ifndef SRC_INSTRUMENT_CONCURRENT_DICTIONARY_H_
#define SRC_INSTRUMENT_CONCURRENT_DICTIONARY_H_

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace tsvd {

template <typename K, typename V>
class ConcurrentDictionary {
 public:
  ConcurrentDictionary() = default;

  bool TryAdd(const K& key, const V& value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.emplace(key, value).second;
  }

  void Set(const K& key, const V& value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[key] = value;
  }

  // Returns the existing value or inserts the factory's product — atomically, the
  // idiom that fixes every check-then-act cache race in this repository's workloads.
  V GetOrAdd(const K& key, const std::function<V()>& factory) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      return it->second;
    }
    V value = factory();
    shard.map.emplace(key, value);
    return value;
  }

  std::optional<V> TryGet(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  bool ContainsKey(const K& key) const { return TryGet(key).has_value(); }

  bool TryRemove(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.erase(key) > 0;
  }

  size_t Count() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V> map;
  };

  Shard& ShardFor(const K& key) { return shards_[std::hash<K>{}(key) % kShards]; }
  const Shard& ShardFor(const K& key) const {
    return shards_[std::hash<K>{}(key) % kShards];
  }

  Shard shards_[kShards];
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_CONCURRENT_DICTIONARY_H_
