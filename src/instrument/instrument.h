// Instrumentation entry point: the C++ analogue of TSVD's proxy methods (Fig. 7).
//
// The deployed instrumenter rewrites each call site of a thread-unsafe API into a
// proxy that calls OnCall(thread_id, obj_id, op_id) and then the original method. Here
// every instrumented container method takes a defaulted std::source_location that
// captures the *caller's* static program location; (file, line, api) is interned into
// a dense OpId with a per-thread memo so the hot path is one hash lookup plus one
// atomic load when no runtime is installed.
#ifndef SRC_INSTRUMENT_INSTRUMENT_H_
#define SRC_INSTRUMENT_INSTRUMENT_H_

#include <source_location>
#include <unordered_map>

#include "src/common/callsite.h"
#include "src/common/ids.h"
#include "src/core/runtime.h"

namespace tsvd {

namespace internal {

struct SiteKey {
  const char* file;
  uint32_t line;
  const char* api;

  bool operator==(const SiteKey&) const = default;
};

struct SiteKeyHash {
  size_t operator()(const SiteKey& k) const {
    size_t h = reinterpret_cast<size_t>(k.file);
    h = h * 0x9e3779b97f4a7c15ULL + k.line;
    h = h * 0x9e3779b97f4a7c15ULL + reinterpret_cast<size_t>(k.api);
    return h;
  }
};

// Thread-local memo: interning proper takes a global lock and builds a key string;
// each thread pays that once per static call site.
inline OpId InternCached(const std::source_location& loc, const char* api, OpKind kind) {
  thread_local std::unordered_map<SiteKey, OpId, SiteKeyHash> cache;
  const SiteKey key{loc.file_name(), loc.line(), api};
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  const OpId id = CallSiteRegistry::Instance().Intern(loc, api, kind);
  cache.emplace(key, id);
  return id;
}

}  // namespace internal

// Reports one dynamic execution of a TSVD point. No-op when no runtime is installed
// (the uninstrumented baseline).
inline void InstrumentPoint(const void* obj, const char* api, OpKind kind,
                            const std::source_location& loc) {
  Runtime* rt = Runtime::Current();
  if (rt == nullptr) {
    return;
  }
  rt->OnCall(ObjectIdOf(obj), internal::InternCached(loc, api, kind), kind);
}

}  // namespace tsvd

// Convenience used inside instrumented container methods, which all take a trailing
// `const std::source_location& loc = std::source_location::current()` parameter.
#define TSVD_READ(api) ::tsvd::InstrumentPoint(this, api, ::tsvd::OpKind::kRead, loc)
#define TSVD_WRITE(api) ::tsvd::InstrumentPoint(this, api, ::tsvd::OpKind::kWrite, loc)

#endif  // SRC_INSTRUMENT_INSTRUMENT_H_
