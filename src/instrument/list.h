// Instrumented List<T> (C# System.Collections.Generic.List): involved in 37% of the
// bugs of Table 1, including the production-incident concurrent Sort of Section 5.6.
#ifndef SRC_INSTRUMENT_LIST_H_
#define SRC_INSTRUMENT_LIST_H_

#include <algorithm>
#include <mutex>
#include <source_location>
#include <stdexcept>
#include <vector>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename T>
class List {
 public:
  using SrcLoc = std::source_location;

  List() = default;

  // ---- write set ----

  void Add(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Add");
    std::lock_guard<std::mutex> latch(latch_);
    items_.push_back(value);
  }

  void Insert(size_t index, const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Insert");
    std::lock_guard<std::mutex> latch(latch_);
    if (index > items_.size()) {
      throw std::out_of_range("List.Insert: index out of range");
    }
    items_.insert(items_.begin() + index, value);
  }

  bool Remove(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Remove");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = std::find(items_.begin(), items_.end(), value);
    if (it == items_.end()) {
      return false;
    }
    items_.erase(it);
    return true;
  }

  void RemoveAt(size_t index, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.RemoveAt");
    std::lock_guard<std::mutex> latch(latch_);
    if (index >= items_.size()) {
      throw std::out_of_range("List.RemoveAt: index out of range");
    }
    items_.erase(items_.begin() + index);
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    items_.clear();
  }

  void Sort(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Sort");
    std::lock_guard<std::mutex> latch(latch_);
    std::sort(items_.begin(), items_.end());
  }

  void Reverse(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Reverse");
    std::lock_guard<std::mutex> latch(latch_);
    std::reverse(items_.begin(), items_.end());
  }

  void Set(size_t index, const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("List.Set");
    std::lock_guard<std::mutex> latch(latch_);
    if (index >= items_.size()) {
      throw std::out_of_range("List.Set: index out of range");
    }
    items_[index] = value;
  }

  // ---- read set ----

  T Get(size_t index, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("List.Get");
    std::lock_guard<std::mutex> latch(latch_);
    if (index >= items_.size()) {
      throw std::out_of_range("List.Get: index out of range");
    }
    return items_[index];
  }

  bool Contains(const T& value, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("List.Contains");
    std::lock_guard<std::mutex> latch(latch_);
    return std::find(items_.begin(), items_.end(), value) != items_.end();
  }

  ptrdiff_t IndexOf(const T& value, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("List.IndexOf");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = std::find(items_.begin(), items_.end(), value);
    return it == items_.end() ? -1 : it - items_.begin();
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("List.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return items_.size();
  }

  std::vector<T> ToVector(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("List.ToVector");
    std::lock_guard<std::mutex> latch(latch_);
    return items_;
  }

 private:
  mutable std::mutex latch_;
  std::vector<T> items_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_LIST_H_
