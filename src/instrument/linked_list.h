// Instrumented LinkedList<T> (C# System.Collections.Generic.LinkedList).
#ifndef SRC_INSTRUMENT_LINKED_LIST_H_
#define SRC_INSTRUMENT_LINKED_LIST_H_

#include <algorithm>
#include <list>
#include <mutex>
#include <optional>
#include <source_location>

#include "src/instrument/instrument.h"

namespace tsvd {

template <typename T>
class LinkedList {
 public:
  using SrcLoc = std::source_location;

  LinkedList() = default;

  // ---- write set ----

  void AddFirst(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("LinkedList.AddFirst");
    std::lock_guard<std::mutex> latch(latch_);
    items_.push_front(value);
  }

  void AddLast(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("LinkedList.AddLast");
    std::lock_guard<std::mutex> latch(latch_);
    items_.push_back(value);
  }

  bool Remove(const T& value, const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("LinkedList.Remove");
    std::lock_guard<std::mutex> latch(latch_);
    auto it = std::find(items_.begin(), items_.end(), value);
    if (it == items_.end()) {
      return false;
    }
    items_.erase(it);
    return true;
  }

  std::optional<T> RemoveFirst(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("LinkedList.RemoveFirst");
    std::lock_guard<std::mutex> latch(latch_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void Clear(const SrcLoc& loc = SrcLoc::current()) {
    TSVD_WRITE("LinkedList.Clear");
    std::lock_guard<std::mutex> latch(latch_);
    items_.clear();
  }

  // ---- read set ----

  std::optional<T> First(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("LinkedList.First");
    std::lock_guard<std::mutex> latch(latch_);
    if (items_.empty()) {
      return std::nullopt;
    }
    return items_.front();
  }

  bool Contains(const T& value, const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("LinkedList.Contains");
    std::lock_guard<std::mutex> latch(latch_);
    return std::find(items_.begin(), items_.end(), value) != items_.end();
  }

  size_t Count(const SrcLoc& loc = SrcLoc::current()) const {
    TSVD_READ("LinkedList.Count");
    std::lock_guard<std::mutex> latch(latch_);
    return items_.size();
  }

 private:
  mutable std::mutex latch_;
  std::list<T> items_;
};

}  // namespace tsvd

#endif  // SRC_INSTRUMENT_LINKED_LIST_H_
