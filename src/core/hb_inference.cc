#include "src/core/hb_inference.h"

namespace tsvd {

HbInference::HbInference(const Config& config, TrapSet& trap_set)
    : config_(config), trap_set_(trap_set) {
  delays_.resize(kDelayRing);
}

void HbInference::OnAccess(const Access& access) {
  ThreadState& state = threads_.Get(access.tid);

  // Transitivity window: the next k_hb accesses after an inferred stall also
  // happen-after the delayed location.
  if (state.credit_left > 0 && state.credit_src != kInvalidOp) {
    trap_set_.MarkHbOrdered(state.credit_src, access.op);
    --state.credit_left;
  }

  // delta_hb = 0 degenerates to "any gap overlapping a delay infers HB" — the
  // configuration Fig. 9(d) shows inferring many non-existent relationships.
  const Micros gap_threshold =
      static_cast<Micros>(config_.hb_blocking_threshold * config_.delay_us);
  if (state.last_access > 0) {
    const Micros gap = access.time - state.last_access;
    // A matching delay must have ended inside [last_access, now]; if even the newest
    // recorded end predates the gap, no scan can succeed — skip the lock entirely.
    if (gap >= gap_threshold &&
        latest_delay_end_.load(std::memory_order_acquire) >= state.last_access) {
      // Find the most recently finished delay from another thread that overlaps the
      // gap: it started before the gap ended and ended after the gap began.
      FinishedDelay best;
      {
        std::lock_guard<std::mutex> lock(delays_mu_);
        for (const FinishedDelay& d : delays_) {
          if (d.op == kInvalidOp || d.tid == access.tid) {
            continue;
          }
          if (d.end >= state.last_access && d.end <= access.time && d.end > best.end) {
            best = d;
          }
        }
      }
      if (best.op != kInvalidOp) {
        trap_set_.MarkHbOrdered(best.op, access.op);
        inferred_edges_.fetch_add(1, std::memory_order_relaxed);
        state.credit_src = best.op;
        state.credit_left = config_.hb_inference_window;
      }
    }
  }
  state.last_access = access.time;
}

void HbInference::OnDelayFinished(const Access& access, const DelayOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(delays_mu_);
    delays_[delays_next_ % kDelayRing] =
        FinishedDelay{access.op, access.tid, outcome.start_us, outcome.end_us};
    ++delays_next_;
    // Monotone max under the lock (ends can arrive slightly out of order); release
    // pairs with the acquire skip-check in OnAccess.
    if (outcome.end_us > latest_delay_end_.load(std::memory_order_relaxed)) {
      latest_delay_end_.store(outcome.end_us, std::memory_order_release);
    }
  }
  // The delaying thread was "busy sleeping": advance its own timeline so its next
  // access does not read the sleep as a causal stall caused by someone else.
  threads_.Get(access.tid).last_access = outcome.end_us;
}

}  // namespace tsvd
