#include "src/core/delay_engine.h"

#include <algorithm>
#include <vector>

namespace tsvd {
namespace {

// The sentinel polls rather than recomputing a wake deadline on every park: parks
// are frequent, stalls are rare, and a poll at a fraction of the grace period keeps
// the detection latency bounded without any per-park bookkeeping.
constexpr Micros kMinSentinelTickUs = 1'000;
constexpr Micros kMaxSentinelTickUs = 50'000;

}  // namespace

const char* WakeReasonName(WakeReason reason) {
  switch (reason) {
    case WakeReason::kTimeout:
      return "timeout";
    case WakeReason::kCatchWake:
      return "catch-wake";
    case WakeReason::kStallCancel:
      return "stall-cancel";
    case WakeReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

DelayEngine::DelayEngine(const Config& config)
    : config_(config), run_start_us_(NowMicros()), last_progress_us_(run_start_us_) {}

DelayEngine::~DelayEngine() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    CancelAllLocked(WakeReason::kShutdown);
    if (sentinel_started_) {
      to_join = std::move(sentinel_);
    }
  }
  sentinel_cv_.notify_all();
  if (to_join.joinable()) {
    to_join.join();
  }
}

bool DelayEngine::Admit(ThreadId tid, Micros duration_us) {
  if (duration_us <= 0) {
    return false;
  }
  if (config_.max_delay_per_thread_us > 0 && tid < thread_budgets_.capacity()) {
    if (thread_budgets_.Get(tid).committed + duration_us > config_.max_delay_per_thread_us) {
      delays_skipped_budget_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(gov_mu_);
    const Micros in_flight = gov_spent_us_ + gov_reserved_us_ + duration_us;
    if (config_.max_delay_total_us > 0 && in_flight > config_.max_delay_total_us) {
      delays_skipped_budget_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (config_.max_overhead_pct > 0) {
      // Charge the delay against the wall time as it will stand when the delay
      // finishes: elapsed + duration. Reservations count in full, so concurrent
      // admissions cannot jointly overshoot the cap — the invariant is
      // spent + reserved <= pct% of elapsed wall time, give or take one
      // in-flight delay per thread (settled down when the park ends early).
      const Micros elapsed = NowMicros() - run_start_us_ + duration_us;
      const Micros allowed =
          static_cast<Micros>(config_.max_overhead_pct / 100.0 * static_cast<double>(elapsed));
      if (in_flight > allowed) {
        delays_skipped_budget_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    gov_reserved_us_ += duration_us;
  }
  if (config_.max_delay_per_thread_us > 0 && tid < thread_budgets_.capacity()) {
    thread_budgets_.Get(tid).committed += duration_us;
  }
  return true;
}

void DelayEngine::Settle(ThreadId tid, Micros reserved_us, Micros slept_us) {
  {
    std::lock_guard<std::mutex> lock(gov_mu_);
    gov_reserved_us_ -= reserved_us;
    gov_spent_us_ += slept_us;
  }
  if (config_.max_delay_per_thread_us > 0 && tid < thread_budgets_.capacity()) {
    // Keep the larger of requested/actual committed: a sleep overshooting its
    // deadline still counts in full, an early wake refunds the unslept tail.
    Micros& committed = thread_budgets_.Get(tid).committed;
    if (slept_us < reserved_us) {
      committed -= reserved_us - slept_us;
    }
  }
}

ParkResult DelayEngine::Park(ThreadId tid, OpId op, Micros duration_us) {
  ParkResult result;
  result.start_us = NowMicros();
  Ticket ticket;
  ticket.tid = tid;
  ticket.op = op;
  ticket.park_start = result.start_us;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      result.end_us = result.start_us;
      result.reason = WakeReason::kShutdown;
      Settle(tid, duration_us, 0);
      return result;
    }
    MaybeStartSentinelLocked();
    // Refresh the watermark before callers start maintaining it (NoteProgress only
    // stores it while parked_count_ is nonzero): the sentinel must never judge the
    // fresh park against a watermark that went stale during a parkless stretch.
    last_progress_us_.store(result.start_us, std::memory_order_relaxed);
    parked_count_.fetch_add(1, std::memory_order_relaxed);
    parked_.push_back(&ticket);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(duration_us);
    while (!ticket.woken) {
      if (ticket.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          !ticket.woken) {
        break;  // full-length sleep; reason stays kTimeout
      }
    }
    result.reason = ticket.reason;
    parked_.remove(&ticket);
    parked_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  result.end_us = NowMicros();
  const Micros slept = result.end_us - result.start_us;
  total_slept_us_.fetch_add(slept, std::memory_order_relaxed);
  switch (result.reason) {
    case WakeReason::kCatchWake:
      early_woken_.fetch_add(1, std::memory_order_relaxed);
      early_wake_saved_us_.fetch_add(std::max<Micros>(0, duration_us - slept),
                                     std::memory_order_relaxed);
      break;
    case WakeReason::kStallCancel:
      aborted_stall_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WakeReason::kTimeout:
    case WakeReason::kShutdown:
      break;
  }
  Settle(tid, duration_us, slept);
  return result;
}

bool DelayEngine::WakeThread(ThreadId tid, WakeReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Ticket* ticket : parked_) {
    if (ticket->tid == tid && !ticket->woken) {
      ticket->woken = true;
      ticket->reason = reason;
      ticket->cv.notify_one();
      return true;
    }
  }
  return false;
}

size_t DelayEngine::CancelAllLocked(WakeReason reason) {
  size_t woken = 0;
  for (Ticket* ticket : parked_) {  // list order == park order == oldest first
    if (!ticket->woken) {
      ticket->woken = true;
      ticket->reason = reason;
      ticket->cv.notify_one();
      ++woken;
    }
  }
  return woken;
}

size_t DelayEngine::CancelAllParked(WakeReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  return CancelAllLocked(reason);
}

void DelayEngine::NoteProgress(ThreadId tid, Micros now) {
  if (tid < last_seen_.capacity()) {
    last_seen_.Get(tid).value.store(now, std::memory_order_relaxed);
  }
  // Only maintain the shared watermark while the sentinel could be consuming it;
  // see the header comment. Park() seeds it when a parkless stretch ends.
  if (parked_count_.load(std::memory_order_relaxed) != 0) {
    last_progress_us_.store(now, std::memory_order_relaxed);
  }
}

void DelayEngine::MaybeStartSentinelLocked() {
  if (sentinel_started_ || config_.stall_grace_us <= 0) {
    return;
  }
  sentinel_started_ = true;
  sentinel_ = std::thread([this] { SentinelLoop(); });
}

void DelayEngine::SentinelLoop() {
  const Micros grace = config_.stall_grace_us;
  const auto tick = std::chrono::microseconds(
      std::clamp<Micros>(grace / 4, kMinSentinelTickUs, kMaxSentinelTickUs));
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    sentinel_cv_.wait_for(lock, tick);
    if (shutdown_ || parked_.empty()) {
      continue;
    }
    const Micros now = NowMicros();
    const Micros oldest_age = now - parked_.front()->park_start;

    // Stall shape 1: nobody — parked or not — has entered OnCall for a full grace
    // period while delays are armed. A peer is most likely blocked on something the
    // sleeper holds (the §4.2 hazard).
    const bool no_progress =
        now - last_progress_us_.load(std::memory_order_relaxed) > grace;

    // Stall shape 2: every instrumented thread seen within the last grace period is
    // itself parked. Sleeping threads cannot walk into each other's traps, so the
    // delays can no longer catch anything; release them early (half grace, to let
    // late-starting threads arrive before we give up on the round).
    bool all_parked = false;
    if (!no_progress && oldest_age > grace / 2) {
      std::vector<ThreadId> parked_tids;
      parked_tids.reserve(parked_.size());
      for (const Ticket* ticket : parked_) {
        parked_tids.push_back(ticket->tid);
      }
      size_t active_outside = 0;
      for (size_t tid = 0; tid < last_seen_.capacity(); ++tid) {
        const Micros seen = last_seen_.Get(static_cast<ThreadId>(tid))
                                .value.load(std::memory_order_relaxed);
        if (seen == 0 || now - seen > grace) {
          continue;  // never instrumented / idle long enough to not count
        }
        if (std::find(parked_tids.begin(), parked_tids.end(),
                      static_cast<ThreadId>(tid)) == parked_tids.end()) {
          ++active_outside;
          break;
        }
      }
      all_parked = active_outside == 0;
    }

    if (no_progress || all_parked) {
      CancelAllLocked(WakeReason::kStallCancel);
      // Restart the grace window so the cancelled threads get time to resume
      // before the next sweep can fire.
      last_progress_us_.store(now, std::memory_order_relaxed);
    }
  }
}

}  // namespace tsvd
