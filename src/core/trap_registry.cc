#include "src/core/trap_registry.h"

#include <algorithm>

namespace tsvd {

TrapRegistry::Trap* TrapRegistry::Set(const Access& access, StackTrace stack) {
  auto trap = std::make_unique<Trap>();
  trap->access = access;
  trap->stack = std::move(stack);
  Trap* raw = trap.get();
  Shard& shard = ShardFor(access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.traps.push_back(std::move(trap));
  return raw;
}

bool TrapRegistry::Clear(Trap* trap) {
  Shard& shard = ShardFor(trap->access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  const bool hit = trap->hit;
  auto it = std::find_if(shard.traps.begin(), shard.traps.end(),
                         [trap](const std::unique_ptr<Trap>& t) { return t.get() == trap; });
  if (it != shard.traps.end()) {
    shard.traps.erase(it);
  }
  return hit;
}

TrapRegistry::Conflict TrapRegistry::CheckAndMark(const Access& access) {
  Shard& shard = ShardFor(access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& trap : shard.traps) {
    const Access& t = trap->access;
    if (t.obj == access.obj && t.tid != access.tid && KindsConflict(t.kind, access.kind)) {
      trap->hit = true;
      return Conflict{true, t, trap->stack};
    }
  }
  return Conflict{};
}

size_t TrapRegistry::ArmedCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.traps.size();
  }
  return n;
}

}  // namespace tsvd
