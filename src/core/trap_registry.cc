#include "src/core/trap_registry.h"

namespace tsvd {

TrapRegistry::Trap* TrapRegistry::Set(const Access& access, StackTrace stack) {
  auto trap = std::make_unique<Trap>();
  trap->access = access;
  trap->stack = std::move(stack);
  Trap* raw = trap.get();
  Shard& shard = ShardFor(access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  raw->slot = shard.traps.size();
  shard.traps.push_back(std::move(trap));
  // Release: a checker that (acquire-)reads a nonzero count sees the trap already in
  // the vector once it takes the lock; ordered before Set() returns, so a trap armed
  // happens-before a racing access is always visible to its fast-path check.
  shard.armed.fetch_add(1, std::memory_order_release);
  return raw;
}

bool TrapRegistry::Clear(Trap* trap) {
  Shard& shard = ShardFor(trap->access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  const bool hit = trap->hit;
  // Swap-and-pop using the maintained slot index: O(1) regardless of how many traps
  // the shard holds.
  const size_t slot = trap->slot;
  auto& traps = shard.traps;
  if (slot + 1 < traps.size()) {
    std::swap(traps[slot], traps.back());
    traps[slot]->slot = slot;
  }
  traps.pop_back();
  shard.armed.fetch_sub(1, std::memory_order_release);
  return hit;
}

TrapRegistry::Conflict TrapRegistry::CheckAndMarkSlow(Shard& shard,
                                                      const Access& access) {
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& trap : shard.traps) {
    const Access& t = trap->access;
    if (t.obj == access.obj && t.tid != access.tid && KindsConflict(t.kind, access.kind)) {
      trap->hit = true;
      return Conflict{true, t, trap->stack};
    }
  }
  return Conflict{};
}

}  // namespace tsvd
