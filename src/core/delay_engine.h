// Interruptible delay injection: parks, wake sources, and the delay governor.
//
// The paper's runtime models a delay as an uninterruptible sleep; §4.2 concedes the
// consequence — TSVD does not know which locks the delayed thread holds, so a delay
// can stall the host test until an external watchdog kills the whole run. The delay
// engine replaces the raw sleep with a per-trap condition-variable park that three
// mechanisms can cut short:
//
//   1. Catch wake: the moment a conflicting access springs the trap, the trapped
//      thread is released. The bug is already caught; the remaining sleep is pure
//      wasted wall time (bench/delay_engine_wakeup measures the saving).
//   2. Progress sentinel: a lazily started monitor thread watches for the two stall
//      shapes a delay can cause — no thread has entered OnCall for longer than
//      `stall_grace_us` while at least one delay is parked (a peer is blocked on a
//      resource the sleeper holds), or every recently active instrumented thread is
//      itself parked (delays cannot catch each other, so the sleeps are dead weight).
//      Either way it cancels all active parks, oldest first. The cancelled delay
//      reports `conflict_found = false` upstream, so P_loc decays through the
//      detector's ordinary failed-delay path.
//   3. Governor: admission control extending the per-request budget machinery —
//      a per-thread budget (`max_delay_per_thread_us`), a per-run aggregate budget
//      (`max_delay_total_us`), and an adaptive overhead cap (`max_overhead_pct`):
//      when injected-delay wall time would exceed that fraction of elapsed run time,
//      new delays are skipped until the ratio recovers.
//
// The engine is per-Runtime, like the trap registry: forked sandbox children build a
// fresh Runtime and therefore a fresh engine (the sentinel thread is never inherited
// across fork, since it is only started lazily at the first park).
#ifndef SRC_CORE_DELAY_ENGINE_H_
#define SRC_CORE_DELAY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/padded.h"
#include "src/common/per_thread.h"

namespace tsvd {

enum class WakeReason {
  kTimeout,      // the delay ran its full length
  kCatchWake,    // a conflicting access sprang the trap; no reason to keep sleeping
  kStallCancel,  // the progress sentinel declared the run stalled
  kShutdown,     // engine teardown or the fail-open firewall disabling the runtime
};

const char* WakeReasonName(WakeReason reason);

struct ParkResult {
  WakeReason reason = WakeReason::kTimeout;
  Micros start_us = 0;
  Micros end_us = 0;
};

class DelayEngine {
 public:
  explicit DelayEngine(const Config& config);
  ~DelayEngine();

  DelayEngine(const DelayEngine&) = delete;
  DelayEngine& operator=(const DelayEngine&) = delete;

  // Admission control. On success the full duration is reserved against the
  // per-thread, aggregate, and overhead budgets; Park() settles the reservation to
  // the time actually slept. Every rejection bumps delays_skipped_budget. The
  // caller must follow a successful Admit with Park on the same thread.
  bool Admit(ThreadId tid, Micros duration_us);

  // Parks the calling thread for up to duration_us or until woken early. Settles
  // the admission reservation on exit.
  ParkResult Park(ThreadId tid, OpId op, Micros duration_us);

  // Wakes the park of `tid`, if any. Returns true if a parked thread was woken.
  // Used by the runtime's trap-conflict path: TrapRegistry::Conflict names the
  // trapped thread, and each thread holds at most one park at a time.
  bool WakeThread(ThreadId tid, WakeReason reason);

  // Cancels every active park, oldest first. Returns the number woken.
  size_t CancelAllParked(WakeReason reason);

  // Progress heartbeat: called on every OnCall entry. Lock-free: one relaxed store
  // to the caller's own cache-line-isolated slot, plus — only while at least one
  // delay is actually parked — one to the global no-OnCall watermark. The sentinel
  // is the watermark's only consumer and it only acts while parks are pending, so
  // in the parkless steady state every thread hammering one shared watermark line
  // would be pure cross-core invalidation traffic for nothing; the park counter
  // gating it is read-mostly (written only when parks begin and end). `now` is the
  // caller's already-taken timestamp — OnCall needs the clock anyway, and reading
  // it once keeps the second vDSO call off the hot path.
  void NoteProgress(ThreadId tid, Micros now);

  // Lets the runtime fold its own admission rejections (e.g. the per-request
  // budget, which needs request TLS the engine has no business reading) into the
  // same skip counter.
  void NoteSkippedBudget() {
    delays_skipped_budget_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- counters (stable once the run's tasks are quiescent) ---
  uint64_t EarlyWoken() const { return early_woken_.load(std::memory_order_relaxed); }
  uint64_t AbortedStall() const { return aborted_stall_.load(std::memory_order_relaxed); }
  uint64_t SkippedBudget() const {
    return delays_skipped_budget_.load(std::memory_order_relaxed);
  }
  // Tail sleep avoided by catch wakes: sum over early-woken parks of
  // (requested duration - time actually slept).
  Micros EarlyWakeSavedUs() const {
    return early_wake_saved_us_.load(std::memory_order_relaxed);
  }
  // Total time threads actually spent parked.
  Micros TotalSleptUs() const { return total_slept_us_.load(std::memory_order_relaxed); }

 private:
  struct Ticket {
    ThreadId tid = 0;
    OpId op = kInvalidOp;
    Micros park_start = 0;
    bool woken = false;
    WakeReason reason = WakeReason::kTimeout;
    std::condition_variable cv;
  };

  struct ThreadBudget {
    Micros committed = 0;  // sum of admitted durations, refunded down to actual on settle
  };

  void MaybeStartSentinelLocked();
  void SentinelLoop();
  // Cancels all parks, oldest first. Caller holds mu_.
  size_t CancelAllLocked(WakeReason reason);
  void Settle(ThreadId tid, Micros reserved_us, Micros slept_us);

  const Config config_;
  const Micros run_start_us_;

  // Protects parked_ and the sentinel start/stop handshake. Tickets live on their
  // parker's stack; they are only reachable through parked_, so every access to a
  // ticket of another thread happens under this mutex.
  std::mutex mu_;
  std::list<Ticket*> parked_;  // insertion order == park order == oldest first

  // Governor accounting: reservations and settled spend, under their own mutex so
  // admissions never contend with wakes.
  std::mutex gov_mu_;
  Micros gov_reserved_us_ = 0;
  Micros gov_spent_us_ = 0;
  PerThread<ThreadBudget> thread_budgets_;

  // Stall detection state. last_progress_us_ is the no-OnCall watermark, written
  // by callers only while parked_count_ is nonzero (and refreshed at park entry so
  // it is never stale when the sentinel starts judging). last_seen_ feeds the
  // "every recently active thread is parked" check; slots are cache-line isolated
  // because dense ThreadIds put concurrent writers on adjacent elements.
  std::atomic<Micros> last_progress_us_;
  std::atomic<uint32_t> parked_count_{0};
  PerThread<CacheAligned<std::atomic<Micros>>> last_seen_;

  std::thread sentinel_;
  std::condition_variable sentinel_cv_;
  bool sentinel_started_ = false;
  bool shutdown_ = false;

  std::atomic<uint64_t> early_woken_{0};
  std::atomic<uint64_t> aborted_stall_{0};
  std::atomic<uint64_t> delays_skipped_budget_{0};
  std::atomic<Micros> early_wake_saved_us_{0};
  std::atomic<Micros> total_slept_us_{0};
};

}  // namespace tsvd

#endif  // SRC_CORE_DELAY_ENGINE_H_
