// Access and synchronization events flowing into detectors.
#ifndef SRC_CORE_ACCESS_H_
#define SRC_CORE_ACCESS_H_

#include "src/common/clock.h"
#include "src/common/ids.h"

namespace tsvd {

// One dynamic execution of a TSVD point: the (thread, object, operation) triple of the
// paper's OnCall, plus a timestamp, the operation's read/write classification, the
// executing context (for TSVDHB only), and whether the global execution was in a
// concurrent phase at the time (computed by the runtime, consumed by core TSVD).
struct Access {
  ThreadId tid = 0;
  ObjectId obj = 0;
  OpId op = kInvalidOp;
  OpKind kind = OpKind::kRead;
  Micros time = 0;
  CtxId ctx = kInvalidCtx;
  bool concurrent_phase = false;
};

// Two operations violate a thread-safety contract iff at least one is a write
// (Section 2.2).
inline bool KindsConflict(OpKind a, OpKind b) {
  return a == OpKind::kWrite || b == OpKind::kWrite;
}

// Synchronization events. Published by the task runtime ONLY when the installed
// detector asks for them (TSVDHB). Core TSVD never sees these — that is the point of
// the paper (Section 3.4: "no synchronization modeling or happens-before analysis").
enum class SyncEventType {
  kTaskCreate,   // ctx = child task, other = parent context
  kTaskStart,    // ctx = task now beginning execution on some thread
  kTaskFinish,   // ctx = task that completed
  kTaskJoin,     // ctx = joining context, other = joined (finished) task
  kLockAcquire,  // ctx = acquiring context, lock = lock identity
  kLockRelease,  // ctx = releasing context, lock = lock identity
};

struct SyncEvent {
  SyncEventType type;
  CtxId ctx = kInvalidCtx;
  CtxId other = kInvalidCtx;
  ObjectId lock = 0;
};

}  // namespace tsvd

#endif  // SRC_CORE_ACCESS_H_
