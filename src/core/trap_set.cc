#include "src/core/trap_set.h"

#include <algorithm>
#include <cassert>

#include "src/common/callsite.h"
#include "src/common/thread_id.h"

namespace tsvd {

TrapSet::TrapSet(const Config& config)
    : decay_factor_(config.decay_factor),
      min_probability_(config.min_probability),
      prob_(std::make_unique<std::atomic<double>[]>(kCapacity)) {
  for (OpId i = 0; i < kCapacity; ++i) {
    prob_[i].store(0.0, std::memory_order_relaxed);
  }
}

bool TrapSet::AddPair(OpId a, OpId b) {
  if (a >= kCapacity || b >= kCapacity) {
    return false;
  }
  const LocationPair pair(a, b);
  const uint64_t enc = EncodePair(pair);
  PairCache& cache = pair_caches_.Get(CurrentThreadId());
  const uint64_t epoch = removal_epoch_.load(std::memory_order_acquire);
  if (cache.epoch != epoch) {
    cache.epoch = epoch;
    std::fill(std::begin(cache.entries), std::end(cache.entries), uint64_t{0});
  }
  const size_t slot = Mix64(enc) & (kPairCacheSlots - 1);
  if (cache.entries[slot] == enc) {
    return false;  // known no-op for this epoch: present, HB-pruned, or caught
  }
  std::lock_guard<std::mutex> lock(mu_);
  const bool added = AddPairLocked(pair);
  // Whether freshly added or already known, the pair is now a member (or permanently
  // blocked): further AddPair calls are no-ops until a removal bumps the epoch.
  cache.entries[slot] = enc;
  return added;
}

bool TrapSet::AddPairLocked(const LocationPair& pair) {
  if (pairs_.contains(pair) || hb_pruned_.contains(pair) || found_.contains(pair)) {
    return false;
  }
  pairs_.insert(pair);
  partners_[pair.first].push_back(pair.second);
  if (pair.first != pair.second) {
    partners_[pair.second].push_back(pair.first);
  }
  SetProbLocked(pair.first, 1.0);
  SetProbLocked(pair.second, 1.0);
  return true;
}

void TrapSet::MarkHbOrdered(OpId a, OpId b) {
  const LocationPair pair(a, b);
  std::lock_guard<std::mutex> lock(mu_);
  hb_pruned_.insert(pair);
  RemovePairLocked(pair);
}

void TrapSet::MarkFound(OpId a, OpId b) {
  const LocationPair pair(a, b);
  std::lock_guard<std::mutex> lock(mu_);
  found_.insert(pair);
  RemovePairLocked(pair);
}

void TrapSet::DecayAfterFailedDelay(OpId op) {
  if (decay_factor_ <= 0.0) {
    return;  // decay disabled (Fig. 9(g), factor 0)
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partners_.find(op);
  if (it == partners_.end() || it->second.empty()) {
    SetProbLocked(op, 0.0);
    return;
  }
  // Decay both endpoints of every pair containing op; collect locations that dropped
  // to zero, then remove their pairs.
  std::vector<OpId> affected = it->second;
  affected.push_back(op);
  std::vector<OpId> dead;
  for (OpId loc : affected) {
    if (loc >= kCapacity) {
      continue;
    }
    double p = prob_[loc].load(std::memory_order_relaxed) * (1.0 - decay_factor_);
    if (p < min_probability_) {
      p = 0.0;
      dead.push_back(loc);
    }
    prob_[loc].store(p, std::memory_order_relaxed);
  }
  for (OpId loc : dead) {
    auto pit = partners_.find(loc);
    if (pit == partners_.end()) {
      continue;
    }
    const std::vector<OpId> its_partners = pit->second;
    for (OpId q : its_partners) {
      RemovePairLocked(LocationPair(loc, q));
    }
  }
}

void TrapSet::RemovePairLocked(const LocationPair& pair) {
  if (pairs_.erase(pair) == 0) {
    return;
  }
  // A removed pair may later be re-added (decay removal is not permanent); every
  // thread's no-op cache must forget it. Release pairs with the acquire load in
  // AddPair so a thread observing the new epoch also observes the removal.
  removal_epoch_.fetch_add(1, std::memory_order_release);
  auto drop = [this](OpId from, OpId what) {
    auto it = partners_.find(from);
    if (it == partners_.end()) {
      return;
    }
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), what), vec.end());
    if (vec.empty()) {
      partners_.erase(it);
      // A location with no remaining pairs has nothing to trap for.
      SetProbLocked(from, 0.0);
    }
  };
  drop(pair.first, pair.second);
  if (pair.first != pair.second) {
    drop(pair.second, pair.first);
  }
}

void TrapSet::SetProbLocked(OpId op, double p) {
  if (op < kCapacity) {
    prob_[op].store(p, std::memory_order_relaxed);
  }
}

uint64_t TrapSet::PairCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pairs_.size();
}

std::vector<OpId> TrapSet::PartnersOf(OpId op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partners_.find(op);
  return it == partners_.end() ? std::vector<OpId>{} : it->second;
}

bool TrapSet::WasHbPruned(OpId a, OpId b) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hb_pruned_.contains(LocationPair(a, b));
}

TrapFile TrapSet::Export() const {
  TrapFile file;
  const CallSiteRegistry& registry = CallSiteRegistry::Instance();
  std::lock_guard<std::mutex> lock(mu_);
  file.pairs.reserve(pairs_.size());
  for (const LocationPair& pair : pairs_) {
    file.pairs.emplace_back(registry.Get(pair.first).Signature(),
                            registry.Get(pair.second).Signature());
  }
  return file;
}

void TrapSet::Import(const TrapFile& file) {
  const CallSiteRegistry& registry = CallSiteRegistry::Instance();
  // Memoize signature resolution: real trap files repeat the same hot signatures in
  // many pairs, and FindBySignature takes the registry lock per call.
  std::unordered_map<std::string, OpId> resolved;
  auto resolve = [&](const std::string& sig) {
    auto it = resolved.find(sig);
    if (it != resolved.end()) {
      return it->second;
    }
    const OpId id = registry.FindBySignature(sig);
    resolved.emplace(sig, id);
    return id;
  };

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [sig_a, sig_b] : file.pairs) {
    const OpId a = resolve(sig_a);
    const OpId b = resolve(sig_b);
    if (a == kInvalidOp || b == kInvalidOp) {
      // The call site has not been interned in this process yet. In-process runs of
      // the same module always resolve because the registry is process-global; a
      // cross-process deployment would re-intern from the instrumenter's site list.
      continue;
    }
    if (a >= kCapacity || b >= kCapacity) {
      continue;
    }
    AddPairLocked(LocationPair(a, b));
  }
}

}  // namespace tsvd
