// TSVD (Section 3.4): the paper's contribution.
//
// Where to inject delays: at locations belonging to the dynamically maintained trap
// set of dangerous pairs — near misses that ran in a concurrent phase, minus pairs
// pruned by HB inference or already-caught violations.
// When: in the same run the pair was discovered (plus subsequent runs via the trap
// file), with per-location probability P_loc that starts at 1 and decays on every
// unproductive delay.
#ifndef SRC_CORE_TSVD_DETECTOR_H_
#define SRC_CORE_TSVD_DETECTOR_H_

#include <memory>
#include <string>

#include "src/common/config.h"
#include "src/common/padded.h"
#include "src/common/per_thread.h"
#include "src/common/rng.h"
#include "src/core/detector.h"
#include "src/core/hb_inference.h"
#include "src/core/nearmiss_tracker.h"
#include "src/core/trap_set.h"

namespace tsvd {

class TsvdDetector : public Detector {
 public:
  explicit TsvdDetector(const Config& config);

  std::string name() const override { return "TSVD"; }

  DelayDecision OnCall(const Access& access) override;
  void OnDelayFinished(const Access& access, const DelayOutcome& outcome) override;
  void OnViolation(const Access& trapped, const Access& racing) override;

  TrapFile ExportTrapFile() const override { return trap_set_.Export(); }
  void ImportTrapFile(const TrapFile& file) override { trap_set_.Import(file); }
  uint64_t TrapSetSize() const override { return trap_set_.PairCount(); }

  // Introspection for tests and ablation benches.
  const TrapSet& trap_set() const { return trap_set_; }
  uint64_t InferredHbEdges() const { return hb_.InferredEdges(); }

 private:
  // Line-aligned: the RNG state advances on every should_delay draw, and dense
  // ThreadIds would otherwise pack 2-3 threads' slots onto one cache line — a
  // false-sharing hotspot on exactly the workloads where the trap set is hot
  // (every thread drawing on every call). See src/common/padded.h.
  struct alignas(kCacheLineSize) RngSlot {
    Rng rng{0};
    bool initialized = false;
  };
  static_assert(sizeof(RngSlot) % kCacheLineSize == 0 &&
                    alignof(RngSlot) == kCacheLineSize,
                "RNG slots must not straddle a neighbor's cache line");
  Rng& RngFor(ThreadId tid);

  Config config_;
  TrapSet trap_set_;
  NearMissTracker nearmiss_;
  HbInference hb_;
  PerThread<RngSlot> rngs_;
};

}  // namespace tsvd

#endif  // SRC_CORE_TSVD_DETECTOR_H_
