// Near-miss tracking (Section 3.4.2).
//
// A global hash table, sharded by object id, holds each object's most recent N_nm
// accesses. A new access forms a near miss with a recorded one if the threads differ,
// at least one operation is a write, and the two are within T_nm of each other. The
// paper indexes by the object's hash-code rather than object metadata; we shard by the
// same hash for scalability.
#ifndef SRC_CORE_NEARMISS_TRACKER_H_
#define SRC_CORE_NEARMISS_TRACKER_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/config.h"
#include "src/core/access.h"

namespace tsvd {

class NearMissTracker {
 public:
  explicit NearMissTracker(const Config& config)
      : window_us_(config.disable_nearmiss_window ? -1 : config.nearmiss_window_us),
        history_(config.disable_nearmiss_window ? config.nearmiss_history_unwindowed
                                                : config.nearmiss_history) {}

  struct NearMiss {
    OpId other_op = kInvalidOp;
    // True if the recorded access executed in a concurrent phase; a dangerous pair
    // needs at least one endpoint in a concurrent phase (Section 3.4.1).
    bool other_concurrent = false;
  };

  // Records `access` and returns the conflicting near misses it forms with the
  // object's recent history.
  std::vector<NearMiss> RecordAndFindConflicts(const Access& access);

  // Number of objects currently tracked (diagnostics / memory accounting).
  size_t TrackedObjects() const;

 private:
  struct Record {
    ThreadId tid;
    OpId op;
    OpKind kind;
    Micros time;
    bool concurrent;
  };

  struct ObjHistory {
    std::vector<Record> records;  // ring-ish: oldest evicted from the front
  };

  static constexpr size_t kShards = 64;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ObjectId, ObjHistory> objects;
    uint64_t inserts_since_sweep = 0;
  };

  Shard& ShardFor(ObjectId obj) { return shards_[(obj >> 4) % kShards]; }
  void MaybeSweep(Shard& shard, Micros now);

  Micros window_us_;  // -1 = unwindowed (Table 3 ablation)
  int history_;
  Shard shards_[kShards];
};

}  // namespace tsvd

#endif  // SRC_CORE_NEARMISS_TRACKER_H_
