// Near-miss tracking (Section 3.4.2).
//
// A global hash table, sharded by object id, holds each object's most recent N_nm
// accesses. A new access forms a near miss with a recorded one if the threads differ,
// at least one operation is a write, and the two are within T_nm of each other. The
// paper indexes by the object's hash-code rather than object metadata; we shard by a
// mixed hash of the same id for scalability (ObjectIds are pointer-derived, so the
// unmixed id concentrates on few shards — see Mix64 in ids.h).
//
// Hot-path design: each object's history is a fixed-capacity ring buffer allocated
// once when the object is first seen, and conflicts are reported through a caller-
// supplied FixedVector. After an object's first access, recording plus the conflict
// scan performs no heap allocation; the only synchronization is the object's shard
// mutex (64 shards, well mixed, so effectively uncontended).
#ifndef SRC_CORE_NEARMISS_TRACKER_H_
#define SRC_CORE_NEARMISS_TRACKER_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/config.h"
#include "src/common/fixed_vector.h"
#include "src/common/padded.h"
#include "src/core/access.h"

namespace tsvd {

class NearMissTracker {
 public:
  explicit NearMissTracker(const Config& config);

  struct NearMiss {
    OpId other_op = kInvalidOp;
    // True if the recorded access executed in a concurrent phase; a dangerous pair
    // needs at least one endpoint in a concurrent phase (Section 3.4.1).
    bool other_concurrent = false;
  };

  // Upper bound on the per-object history, and therefore on the conflicts one access
  // can report (config.nearmiss_history_unwindowed is the largest deployment).
  static constexpr int kMaxHistory = 64;
  using ConflictBuffer = FixedVector<NearMiss, kMaxHistory>;

  // Records `access` and appends the conflicting near misses it forms with the
  // object's recent history to `out` (which the caller keeps on its stack).
  void RecordAndFindConflicts(const Access& access, ConflictBuffer& out);

  // Convenience wrapper for tests and non-hot-path callers.
  std::vector<NearMiss> RecordAndFindConflicts(const Access& access);

  // Number of objects currently tracked (diagnostics / memory accounting).
  size_t TrackedObjects() const;

 private:
  struct Record {
    ThreadId tid;
    OpId op;
    OpKind kind;
    Micros time;
    bool concurrent;
  };

  // Fixed-capacity ring: `ring[0 .. capacity)` allocated once per object; `head` is
  // the next write position, `count` saturates at the capacity. Oldest-first
  // iteration starts at (head - count) mod capacity.
  struct ObjHistory {
    std::unique_ptr<Record[]> ring;
    int head = 0;
    int count = 0;
  };

  static constexpr size_t kShards = 64;
  // MRU cache of the last history touched, one way per thread-id residue class
  // (guarded by the shard mutex; invalidated wholesale on sweep). Accesses have
  // strong per-object temporal locality *per thread*, so a thread's way usually
  // replaces the hash lookup with one compare. The single shared entry this
  // replaces was re-written on every cross-thread object change — under a shared
  // object pool each thread evicted every other thread's entry, so the "cache"
  // degenerated into a line all threads dirtied on every call while almost never
  // hitting. Per-tid ways keep each thread's entry stable (and its writes on its
  // own line) no matter how the other threads interleave.
  static constexpr size_t kMruWays = 8;
  struct MruWay {
    ObjectId obj = 0;
    ObjHistory* hist = nullptr;
  };
  struct alignas(kCacheLineSize) Shard {
    mutable std::mutex mu;
    std::unordered_map<ObjectId, ObjHistory> objects;
    uint64_t inserts_since_sweep = 0;
    CacheAligned<MruWay> mru[kMruWays];
  };
  static_assert(sizeof(Shard) % kCacheLineSize == 0 &&
                    alignof(Shard) == kCacheLineSize,
                "near-miss shards must not straddle a neighbor's cache line");

  Shard& ShardFor(ObjectId obj) { return shards_[Mix64(obj) % kShards]; }
  static MruWay& MruFor(Shard& shard, ThreadId tid) {
    return shard.mru[(tid - 1) & (kMruWays - 1)].value;
  }
  void MaybeSweep(Shard& shard, Micros now);

  Micros window_us_;  // -1 = unwindowed (Table 3 ablation)
  int history_;
  Shard shards_[kShards];
};

}  // namespace tsvd

#endif  // SRC_CORE_NEARMISS_TRACKER_H_
