#include "src/core/tsvd_detector.h"

namespace tsvd {

TsvdDetector::TsvdDetector(const Config& config)
    : config_(config),
      trap_set_(config),
      nearmiss_(config),
      hb_(config, trap_set_) {}

Rng& TsvdDetector::RngFor(ThreadId tid) {
  RngSlot& slot = rngs_.Get(tid);
  if (!slot.initialized) {
    slot.rng = Rng(config_.seed * 0x9e3779b97f4a7c15ULL + tid);
    slot.initialized = true;
  }
  return slot.rng;
}

DelayDecision TsvdDetector::OnCall(const Access& access) {
  // HB inference first: a stall observed *now* should block the pair this very access
  // might otherwise (re)add.
  if (!config_.disable_hb_inference) {
    hb_.OnAccess(access);
  }

  const bool concurrent =
      config_.disable_phase_detection ? true : access.concurrent_phase;

  // Near-miss tracking: record and discover dangerous pairs. A pair requires at least
  // one endpoint to have executed in a concurrent phase. The conflict buffer lives on
  // this stack frame so the common zero-conflict call performs no allocation.
  NearMissTracker::ConflictBuffer misses;
  nearmiss_.RecordAndFindConflicts(access, misses);
  for (const NearMissTracker::NearMiss& miss : misses) {
    if (concurrent || miss.other_concurrent) {
      trap_set_.AddPair(access.op, miss.other_op);
    }
  }

  // should_delay: probabilistic, per location, only for trap-set members.
  const double p = trap_set_.Prob(access.op);
  if (p > 0.0 && RngFor(access.tid).NextBool(p)) {
    return DelayDecision{true, config_.delay_us};
  }
  return DelayDecision{};
}

void TsvdDetector::OnDelayFinished(const Access& access, const DelayOutcome& outcome) {
  if (!config_.disable_hb_inference) {
    hb_.OnDelayFinished(access, outcome);
  }
  if (!outcome.conflict_found) {
    trap_set_.DecayAfterFailedDelay(access.op);
  }
}

void TsvdDetector::OnViolation(const Access& trapped, const Access& racing) {
  trap_set_.MarkFound(trapped.op, racing.op);
}

}  // namespace tsvd
