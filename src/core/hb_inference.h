// Happens-before inference from delay feedback (Section 3.4.4, Fig. 6).
//
// Key observation: if loc1 happens-before loc2 (e.g. both protected by one lock), a
// delay injected right before loc1 causes a proportional stall before loc2. So instead
// of modeling synchronization, TSVD watches for stalls: when thread T's gap since its
// previous TSVD point is >= delta_hb * delay_time AND the gap overlaps a delay that
// another thread injected, infer HB(delayed-loc -> current-loc) — attributing to the
// most recently finished such delay — and, by transitivity, to T's next k_hb accesses.
// Inferred pairs are pruned from the trap set.
#ifndef SRC_CORE_HB_INFERENCE_H_
#define SRC_CORE_HB_INFERENCE_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "src/common/config.h"
#include "src/common/padded.h"
#include "src/common/per_thread.h"
#include "src/core/access.h"
#include "src/core/detector.h"
#include "src/core/trap_set.h"

namespace tsvd {

class HbInference {
 public:
  HbInference(const Config& config, TrapSet& trap_set);

  // Called on every TSVD point (before near-miss pair addition, so that a freshly
  // inferred HB edge blocks the pair from (re)entering the trap set).
  void OnAccess(const Access& access);

  // Called when a delay injected at `access.op` completes. Records the delay for gap
  // attribution and marks the delaying thread active through the delay's end so its
  // own sleep is never misread as a causal stall.
  void OnDelayFinished(const Access& access, const DelayOutcome& outcome);

  uint64_t InferredEdges() const {
    return inferred_edges_.load(std::memory_order_relaxed);
  }

 private:
  struct FinishedDelay {
    OpId op = kInvalidOp;
    ThreadId tid = 0;
    Micros start = 0;
    Micros end = 0;
  };

  // Line-aligned: `last_access` is stored on every OnAccess, and dense ThreadIds
  // would otherwise pack adjacent threads' states onto one line — a per-call
  // false-sharing write on the no-delay fast path.
  struct alignas(kCacheLineSize) ThreadState {
    Micros last_access = 0;
    OpId credit_src = kInvalidOp;
    int credit_left = 0;
  };
  static_assert(sizeof(ThreadState) == kCacheLineSize &&
                    alignof(ThreadState) == kCacheLineSize,
                "HB thread state must own exactly one cache line");

  const Config config_;
  TrapSet& trap_set_;

  // Ring of recently finished delays; scanned (it is tiny) on gap detection.
  static constexpr size_t kDelayRing = 128;
  mutable std::mutex delays_mu_;
  std::vector<FinishedDelay> delays_;
  size_t delays_next_ = 0;
  // Latest end timestamp across all recorded delays. OnAccess reads it before taking
  // delays_mu_: a qualifying delay must end inside the observed gap, so when the
  // latest end predates the gap the scan cannot match and the lock is skipped. With
  // no delays finishing (the common case of a healthy fast path, and always when
  // delta_hb * delay is small relative to inter-access gaps) OnAccess stays lock-free.
  std::atomic<Micros> latest_delay_end_{0};

  PerThread<ThreadState> threads_;
  std::atomic<uint64_t> inferred_edges_{0};
};

}  // namespace tsvd

#endif  // SRC_CORE_HB_INFERENCE_H_
