// Detector interface: the policy half of the trap framework (Fig. 5).
//
// The Runtime implements the mechanism — check_for_trap / set_trap / delay /
// clear_trap — identically for every variant; a Detector answers the two design
// questions of Section 3.1: WHERE to inject delays (which locations are eligible) and
// WHEN (at which dynamic instances). TSVD, DynamicRandom, StaticRandom/DataCollider and
// TSVDHB are all Detectors.
#ifndef SRC_CORE_DETECTOR_H_
#define SRC_CORE_DETECTOR_H_

#include <cstdint>
#include <string>

#include "src/core/access.h"
#include "src/report/trap_file.h"

namespace tsvd {

struct DelayDecision {
  bool inject = false;
  Micros duration_us = 0;
};

struct DelayOutcome {
  Micros start_us = 0;
  Micros end_us = 0;
  // True iff another thread walked into the trap during the sleep, i.e. the delay
  // exposed a violation.
  bool conflict_found = false;
  // True iff the delay was cut short by the progress sentinel (or the fail-open
  // firewall) rather than running its course. The [start_us, end_us] window is the
  // time actually slept. Aborted delays still count as failed ones for P_loc decay:
  // conflict_found is false, and a delay that stalls the run is exactly the kind of
  // site whose probability should drop.
  bool aborted = false;
};

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;

  // If true, the task runtime publishes fork/join/lock events via Runtime::OnSync.
  // Only TSVDHB returns true; TSVD's "local instrumentation only" property is that it
  // never needs these.
  virtual bool WantsSyncEvents() const { return false; }

  // Called on every dynamic TSVD point, before the instrumented operation executes and
  // after the runtime's trap-conflict check. Performs the variant's bookkeeping
  // (near-miss tracking, HB inference, vector clocks, ...) and decides whether to trap.
  virtual DelayDecision OnCall(const Access& access) = 0;

  // Called after a delay injected on behalf of this detector completes.
  virtual void OnDelayFinished(const Access& /*access*/, const DelayOutcome& /*outcome*/) {}

  // Called when a violation is caught between a trapped access and a racing access.
  virtual void OnViolation(const Access& /*trapped*/, const Access& /*racing*/) {}

  // Synchronization events (only delivered if WantsSyncEvents()).
  virtual void OnSync(const SyncEvent& /*event*/) {}

  // Trap-set persistence across runs (Section 3.4.6). Detectors without a trap set
  // return an empty file and ignore imports.
  virtual TrapFile ExportTrapFile() const { return {}; }
  virtual void ImportTrapFile(const TrapFile& /*file*/) {}

  // Current number of dangerous pairs (for run summaries).
  virtual uint64_t TrapSetSize() const { return 0; }
};

}  // namespace tsvd

#endif  // SRC_CORE_DETECTOR_H_
