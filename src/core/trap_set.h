// The trap set: dangerous pairs of program locations and per-location injection
// probabilities (Sections 3.4.1, 3.4.5).
//
// Grows when near misses are discovered; shrinks when a likely happens-before
// relationship is inferred between a pair, when a violation has already been caught at
// a pair, or when decay drives a location's probability to zero.
//
// Hot-path design: AddPair is attempted for every near miss, and in a hot loop the
// same few pairs recur thousands of times — each attempt a no-op that still contended
// the global mutex. Each thread now keeps a small direct-mapped cache of pairs whose
// AddPair is known to be a no-op (already present, HB-pruned, or already caught);
// cache hits return without the lock. Any pair removal bumps a global epoch which
// invalidates every thread's cache wholesale — removals are rare (decay, HB pruning,
// caught bugs), so the conservative flush costs nothing while guaranteeing a removed
// pair can always be re-added.
#ifndef SRC_CORE_TRAP_SET_H_
#define SRC_CORE_TRAP_SET_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/padded.h"
#include "src/common/per_thread.h"
#include "src/report/bug_report.h"
#include "src/report/trap_file.h"

namespace tsvd {

class TrapSet {
 public:
  explicit TrapSet(const Config& config);

  // Adds a dangerous pair discovered via a near miss. No-op (returns false) if the
  // pair is already present, was pruned by HB inference, or was already caught as a
  // violation. On a genuine add, both locations' probabilities are set to 1.
  bool AddPair(OpId a, OpId b);

  // Current injection probability of a location; 0 means "not eligible for delays".
  // Lock-free: this is read on every OnCall.
  double Prob(OpId op) const {
    if (op >= kCapacity) {
      return 0.0;
    }
    return prob_[op].load(std::memory_order_relaxed);
  }

  // HB inference concluded a -> b: the pair cannot race. Removes it and blocks
  // re-addition (Section 3.4.4).
  void MarkHbOrdered(OpId a, OpId b);

  // A violation was caught at this pair; no need to keep hunting it (Section 3.4.1).
  void MarkFound(OpId a, OpId b);

  // A delay at `op` completed without exposing a conflict: decay the probability of
  // both endpoints of every pair containing `op` (Section 3.4.5). Locations whose
  // probability falls below the configured minimum drop to 0 and their pairs leave the
  // trap set.
  void DecayAfterFailedDelay(OpId op);

  uint64_t PairCount() const;
  std::vector<OpId> PartnersOf(OpId op) const;
  bool WasHbPruned(OpId a, OpId b) const;

  // Persistence: export surviving pairs as signatures; import pre-arms pairs with
  // probability 1 even before their first dynamic occurrence. Import resolves and
  // inserts the whole file under one lock acquisition and memoizes signature lookups,
  // so trap files with thousands of (often duplicated) signatures load cheaply.
  TrapFile Export() const;
  void Import(const TrapFile& file);

  static constexpr OpId kCapacity = 1 << 16;

 private:
  bool AddPairLocked(const LocationPair& pair);
  void RemovePairLocked(const LocationPair& pair);
  void SetProbLocked(OpId op, double p);

  // Per-thread direct-mapped cache of pair encodings whose AddPair is a no-op.
  // Entries store EncodePair(pair) + 1 so 0 doubles as "empty"; `epoch` snapshots
  // removal_epoch_ at fill time and a mismatch discards the whole cache.
  // Line-aligned: dense ThreadIds put neighboring threads' caches adjacent, and a
  // cache spilling into a neighbor's line would turn every fill into cross-core
  // invalidation traffic on the near-miss path.
  static constexpr size_t kPairCacheSlots = 32;
  struct alignas(kCacheLineSize) PairCache {
    uint64_t epoch = 0;
    uint64_t entries[kPairCacheSlots] = {};
  };
  static_assert(sizeof(PairCache) % kCacheLineSize == 0 &&
                    alignof(PairCache) == kCacheLineSize,
                "pair caches must not straddle a neighbor's cache line");
  static uint64_t EncodePair(const LocationPair& pair) {
    return ((static_cast<uint64_t>(pair.first) << 32) | pair.second) + 1;
  }

  mutable std::mutex mu_;
  double decay_factor_;
  double min_probability_;

  std::unordered_set<LocationPair, LocationPairHash> pairs_;
  std::unordered_set<LocationPair, LocationPairHash> hb_pruned_;
  std::unordered_set<LocationPair, LocationPairHash> found_;
  std::unordered_map<OpId, std::vector<OpId>> partners_;

  // Bumped (under mu_) whenever a pair leaves pairs_; readers treat a changed value
  // as "all cached no-op conclusions are suspect".
  std::atomic<uint64_t> removal_epoch_{0};
  PerThread<PairCache> pair_caches_;

  // Dense probability table indexed by OpId; reads are lock-free, writes happen under
  // mu_. 64K call sites is far beyond anything a single test process produces.
  std::unique_ptr<std::atomic<double>[]> prob_;
};

}  // namespace tsvd

#endif  // SRC_CORE_TRAP_SET_H_
