// The trap set: dangerous pairs of program locations and per-location injection
// probabilities (Sections 3.4.1, 3.4.5).
//
// Grows when near misses are discovered; shrinks when a likely happens-before
// relationship is inferred between a pair, when a violation has already been caught at
// a pair, or when decay drives a location's probability to zero.
#ifndef SRC_CORE_TRAP_SET_H_
#define SRC_CORE_TRAP_SET_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/report/bug_report.h"
#include "src/report/trap_file.h"

namespace tsvd {

class TrapSet {
 public:
  explicit TrapSet(const Config& config);

  // Adds a dangerous pair discovered via a near miss. No-op (returns false) if the
  // pair is already present, was pruned by HB inference, or was already caught as a
  // violation. On a genuine add, both locations' probabilities are set to 1.
  bool AddPair(OpId a, OpId b);

  // Current injection probability of a location; 0 means "not eligible for delays".
  // Lock-free: this is read on every OnCall.
  double Prob(OpId op) const {
    if (op >= kCapacity) {
      return 0.0;
    }
    return prob_[op].load(std::memory_order_relaxed);
  }

  // HB inference concluded a -> b: the pair cannot race. Removes it and blocks
  // re-addition (Section 3.4.4).
  void MarkHbOrdered(OpId a, OpId b);

  // A violation was caught at this pair; no need to keep hunting it (Section 3.4.1).
  void MarkFound(OpId a, OpId b);

  // A delay at `op` completed without exposing a conflict: decay the probability of
  // both endpoints of every pair containing `op` (Section 3.4.5). Locations whose
  // probability falls below the configured minimum drop to 0 and their pairs leave the
  // trap set.
  void DecayAfterFailedDelay(OpId op);

  uint64_t PairCount() const;
  std::vector<OpId> PartnersOf(OpId op) const;
  bool WasHbPruned(OpId a, OpId b) const;

  // Persistence: export surviving pairs as signatures; import pre-arms pairs with
  // probability 1 even before their first dynamic occurrence.
  TrapFile Export() const;
  void Import(const TrapFile& file);

  static constexpr OpId kCapacity = 1 << 16;

 private:
  void RemovePairLocked(const LocationPair& pair);
  void SetProbLocked(OpId op, double p);

  mutable std::mutex mu_;
  double decay_factor_;
  double min_probability_;

  std::unordered_set<LocationPair, LocationPairHash> pairs_;
  std::unordered_set<LocationPair, LocationPairHash> hb_pruned_;
  std::unordered_set<LocationPair, LocationPairHash> found_;
  std::unordered_map<OpId, std::vector<OpId>> partners_;

  // Dense probability table indexed by OpId; reads are lock-free, writes happen under
  // mu_. 64K call sites is far beyond anything a single test process produces.
  std::unique_ptr<std::atomic<double>[]> prob_;
};

}  // namespace tsvd

#endif  // SRC_CORE_TRAP_SET_H_
