// The TSVD runtime: the mechanism half of the trap framework (Fig. 5).
//
//   OnCall(thread_id, obj_id, op_id):
//     check_for_trap(...)        -> report violation, both threads caught red-handed
//     if (should_delay(op_id)):  -> delegated to the installed Detector
//       set_trap(...); delay(); clear_trap(...)
//
// One Runtime instance exists per instrumented test run (the workload harness creates
// a fresh one per module run, mirroring per-module test isolation at Microsoft). A
// process-wide current-runtime pointer lets instrumented containers reach the runtime
// with a single atomic load; with no runtime installed the instrumentation is a no-op,
// which is the uninstrumented baseline for overhead measurements.
#ifndef SRC_CORE_RUNTIME_H_
#define SRC_CORE_RUNTIME_H_

#include <atomic>
#include <functional>
#include <unordered_map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/execution_context.h"
#include "src/common/padded.h"
#include "src/common/request_context.h"
#include "src/common/sharded_counter.h"
#include "src/core/delay_engine.h"
#include "src/core/detector.h"
#include "src/core/phase_detector.h"
#include "src/core/trap_registry.h"
#include "src/report/coverage.h"
#include "src/report/run_summary.h"

namespace tsvd {

class Runtime {
 public:
  Runtime(const Config& config, std::unique_ptr<Detector> detector);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Entry point from instrumented container methods. This is the fail-open
  // firewall boundary: an internal fault in the detector, the trap machinery, or
  // the delay engine must never take down the host test. Faults are counted, and
  // past config.max_internal_errors the runtime self-disables — every further
  // OnCall is a no-op and the run completes uninstrumented (flagged
  // runtime_disabled in the summary).
  void OnCall(ObjectId obj, OpId op, OpKind kind) noexcept;

  // Entry point from the task runtime (forwarded only if the detector wants it).
  // Same firewall boundary as OnCall.
  void OnSync(const SyncEvent& event) noexcept;
  bool WantsSyncEvents() const { return wants_sync_; }

  // Finalizes counters into a summary. Callable once the run's tasks are quiescent.
  RunSummary Summary() const;

  Detector& detector() { return *detector_; }
  const Config& config() const { return config_; }
  CoverageTracker& coverage() { return coverage_; }

  // All reports so far (copy).
  std::vector<BugReport> Reports() const;

  // Observer invoked synchronously on every violation, while both threads are still
  // at their conflicting call sites (so object identity is still resolvable). The
  // workload harness uses this to cross-check reports against ground truth.
  void SetReportObserver(std::function<void(const BugReport&)> observer) {
    observer_ = std::move(observer);
  }

  // Observer invoked synchronously whenever a trap is armed (just before the delay
  // sleep), with the trapped location. The sandbox streams the site's signature to
  // its parent process so a crash signature can name the last armed trap. Called
  // from workload threads on the delay path — keep it cheap.
  void SetTrapArmObserver(std::function<void(OpId)> observer) {
    trap_arm_observer_ = std::move(observer);
  }

  // --- installation ---
  //
  // Two routing layers. The classic layer is a process-wide pointer (Install /
  // Uninstall): one instrumented run at a time, the deployment's per-process model.
  // The thread-binding layer overrides it per thread so that several instrumented
  // runs can coexist in one process (campaign mode): a bound thread — and every
  // task-pool thread executing work scheduled from it, see tasks::ExecDomain — sees
  // its run's runtime (or no runtime at all for a baseline run) regardless of the
  // global pointer.
  static Runtime* Current() {
    return internal_tls_bound ? internal_tls_runtime
                              : current_.load(std::memory_order_acquire);
  }
  static void Install(Runtime* rt);
  static void Uninstall(Runtime* rt);

  // RAII thread-scoped routing. `rt` may be null: the thread then behaves as
  // uninstrumented even while a global runtime is installed.
  class ThreadBinding {
   public:
    explicit ThreadBinding(Runtime* rt)
        : prev_runtime_(internal_tls_runtime), prev_bound_(internal_tls_bound) {
      internal_tls_runtime = rt;
      internal_tls_bound = true;
    }
    ~ThreadBinding() {
      internal_tls_runtime = prev_runtime_;
      internal_tls_bound = prev_bound_;
    }
    ThreadBinding(const ThreadBinding&) = delete;
    ThreadBinding& operator=(const ThreadBinding&) = delete;

   private:
    Runtime* prev_runtime_;
    bool prev_bound_;
  };

  // RAII installation for scoped runs.
  class Installation {
   public:
    explicit Installation(Runtime& rt) : rt_(rt) { Install(&rt_); }
    ~Installation() { Uninstall(&rt_); }
    Installation(const Installation&) = delete;
    Installation& operator=(const Installation&) = delete;

   private:
    Runtime& rt_;
  };

 private:
  void OnCallImpl(ObjectId obj, OpId op, OpKind kind);
  void ReportViolation(const TrapRegistry::Conflict& conflict, const Access& racing);
  bool RequestBudgetAllows(Micros duration);
  void ChargeRequestBudget(Micros spent);
  void RecordInternalError() noexcept;

  // Per-request delay budgets, sharded by request id so concurrent delaying threads
  // of different requests do not serialize on one mutex. 64-way so a 64-thread run
  // where every thread carries its own request keeps roughly one request per shard.
  static constexpr size_t kRequestBudgetShards = 64;
  struct alignas(kCacheLineSize) RequestBudgetShard {
    std::mutex mu;
    std::unordered_map<RequestId, Micros> budgets;
  };
  static_assert(sizeof(RequestBudgetShard) % kCacheLineSize == 0 &&
                    alignof(RequestBudgetShard) == kCacheLineSize,
                "budget shards must not straddle a neighbor's cache line");
  RequestBudgetShard& BudgetShardFor(RequestId request) {
    return request_budget_shards_[Mix64(request) % kRequestBudgetShards];
  }

  Config config_;
  std::unique_ptr<Detector> detector_;
  bool wants_sync_;

  TrapRegistry traps_;
  PhaseDetector phase_;
  CoverageTracker coverage_;
  DelayEngine engine_;

  mutable std::mutex reports_mu_;
  std::vector<BugReport> reports_;
  std::function<void(const BugReport&)> observer_;
  std::function<void(OpId)> trap_arm_observer_;

  // Hot counters are sharded by thread id: OnCall bumps them on every instrumented
  // call, and a single atomic would bounce one cache line across every core.
  ShardedCounter oncall_count_;
  ShardedCounter delays_injected_;
  std::atomic<uint64_t> sync_events_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<bool> disabled_{false};

  // Per-thread and aggregate delay budgets live in the engine's governor; the
  // per-request budget stays here because it needs the request TLS.
  RequestBudgetShard request_budget_shards_[kRequestBudgetShards];

  static std::atomic<Runtime*> current_;

  // Thread-binding storage (public-access names avoided via internal_ prefix; kept in
  // the class's file for locality, defined inline so the header stays self-contained).
  static thread_local Runtime* internal_tls_runtime;
  static thread_local bool internal_tls_bound;
};

}  // namespace tsvd

#endif  // SRC_CORE_RUNTIME_H_
