// Concurrent-phase inference (Section 3.4.3), rebuilt for flat thread scaling.
//
// The paper's detector is a global ring buffer of the most recently executed TSVD
// points; the execution is in a concurrent phase iff the buffer holds points from
// more than one thread. A TSVD point inside a sequential phase (initialization,
// clean-up, join-after-fork) can never race, so near misses seen there are not
// dangerous.
//
// Scaling history. The naive O(B)-rescan version put a 64-slot loop on every call.
// The incremental rewrite (PR 5) got that to O(1) but kept two globally shared
// mutable words — the ring cursor (`next_`, an RMW by every call) and the shared
// ring slots themselves — so every OnCall still dirtied cache lines that every
// other core was reading: per-call cost grew near-linearly with thread count.
//
// This version removes every globally shared write from the steady state:
//
//   * Per-shard phase rings. Threads hash (dense ThreadId, identity-folded) onto
//     64 cache-line-isolated shards; a call appends a packed (tid, epoch) entry to
//     its own shard's tiny ring. With up to 64 live threads no two threads share a
//     shard, so ring writes are contention-free; beyond that, only aliased threads
//     share a line, and the ring (rather than a single slot) keeps all of them
//     visible to aggregation. In the steady state of a phase the shard's `last`
//     entry already holds (tid, current epoch) and the call writes nothing at all.
//
//   * Epoch-sampled aggregation. The ">1 distinct thread executing?" answer is not
//     recomputed per call. A sweeper — piggybacked on ordinary calls, no extra
//     thread — periodically advances a global epoch and folds per-shard ring
//     occupancy (entries stamped with the current or previous epoch are "recent")
//     into one published distinct-thread count. The fast path answers from a
//     single load-acquire of that read-mostly snapshot. One transition is handled
//     eagerly so detection latency matches the old detector: while the published
//     answer is still "one thread", the first record by a *different* thread
//     sweeps inline, so the second thread's very first call flips the answer.
//
// The shared mutable state is thus: the snapshot + epoch line (written once per
// sweep period, read-only between sweeps, so it stays resident in every core's
// cache) and the sweep lock (one CAS per sweep period). Everything else a call
// touches is shard-private.
//
// Invariant: ThreadId 0 is the "slot never filled" sentinel. CurrentThreadId()
// hands out ids starting at 1 and never reuses 0 (see thread_id.h); RecordAndCheck
// asserts this so a future id scheme cannot silently alias the sentinel and make a
// real thread invisible to phase detection.
#ifndef SRC_CORE_PHASE_DETECTOR_H_
#define SRC_CORE_PHASE_DETECTOR_H_

#include <atomic>
#include <cassert>
#include <cstring>

#include "src/common/ids.h"
#include "src/common/padded.h"

namespace tsvd {

class PhaseDetector {
 public:
  static constexpr int kMaxBuffer = 64;

  // `buffer_size` is the paper's phase-buffer knob. It no longer sizes a global
  // ring; it scales the sweep period (how many shard-local calls make one epoch),
  // preserving its role as "how much recent history keeps a thread in the phase".
  explicit PhaseDetector(int buffer_size) {
    assert(buffer_size >= 1 && buffer_size <= kMaxBuffer);
    period_ = static_cast<uint32_t>(buffer_size) * 16;
    if (period_ < 64) {
      period_ = 64;
    }
  }

  // Records that `tid` executed a TSVD point and returns whether the execution is
  // currently in a concurrent phase. Relaxed atomics throughout the ring: the
  // buffer is a heuristic; torn interleavings only perturb which accesses count as
  // concurrent, never correctness.
  bool RecordAndCheck(ThreadId tid) {
    assert(tid != 0 && "ThreadId 0 is reserved as the empty-slot sentinel");
    Shard& shard = ShardFor(tid);
    const uint32_t epoch = snapshot_.epoch.load(std::memory_order_relaxed);
    const uint64_t packed = Pack(tid, epoch);
    const uint64_t prev = shard.last.load(std::memory_order_relaxed);
    if (prev != packed) {
      // First record of (tid, epoch) in this shard: append to the shard ring.
      // The cursor RMW is shard-private — contended only by threads aliased onto
      // this shard, i.e. never with <= 64 live threads.
      const uint32_t slot =
          shard.cursor.fetch_add(1, std::memory_order_relaxed) & (kRingDepth - 1);
      shard.ring[slot].store(packed, std::memory_order_relaxed);
      shard.last.store(packed, std::memory_order_relaxed);
      // Eager 1 -> >1 transition: the old global ring flipped the answer on the
      // second thread's first call, and trap decisions downstream depend on that
      // latency. Sweep inline only when a *different* thread appears while the
      // published answer still says "one thread" — a lone thread refreshing its
      // epoch stamp (TidOf(prev) == tid) never pays this.
      if (TidOf(prev) != tid &&
          snapshot_.distinct.load(std::memory_order_acquire) <= 1) {
        Sweep(/*advance_epoch=*/false);
      }
    }
    // Epoch clock, piggybacked on ordinary calls: every `period_` calls into this
    // shard, advance the epoch and re-aggregate. The counter is shard-private; a
    // lost increment under aliasing only stretches the period, never corrupts it.
    const uint32_t calls = shard.calls.load(std::memory_order_relaxed) + 1;
    shard.calls.store(calls, std::memory_order_relaxed);
    if (calls % period_ == 0) {
      Sweep(/*advance_epoch=*/true);
    }
    return snapshot_.distinct.load(std::memory_order_acquire) > 1;
  }

  // The published distinct-thread count of the last sweep. With stable phases and
  // fewer than kFoldSlots dense live threads this converges to the exact number of
  // distinct recording threads (see the determinism test).
  uint32_t DistinctThreads() const {
    return snapshot_.distinct.load(std::memory_order_acquire);
  }

  // Forces one epoch advance + aggregation, as the piggybacked clock would after
  // `period_` calls. Deterministic from a single thread; tests and diagnostics use
  // it instead of spinning out period-sized call loops.
  void SweepNow() { Sweep(/*advance_epoch=*/true); }

  // Shard-local calls per epoch advance (diagnostics; derived from buffer_size).
  uint32_t SweepPeriod() const { return period_; }

 private:
  static constexpr uint32_t kShards = 64;
  static constexpr uint32_t kRingDepth = 4;  // packed (tid, epoch) entries per shard

  // Occupancy is folded so the sweep bitmap stays a fixed 512B even if the process
  // churns through unbounded thread ids. Two threads folding together can only
  // under-report concurrency (they look like one thread), mirroring the
  // conservative direction of the paper's heuristic; with < 4096 live threads the
  // fold is the identity.
  static constexpr uint32_t kFoldSlots = 4096;

  static uint64_t Pack(ThreadId tid, uint32_t epoch) {
    return (static_cast<uint64_t>(tid) << 32) | epoch;
  }
  static ThreadId TidOf(uint64_t packed) {
    return static_cast<ThreadId>(packed >> 32);
  }
  static uint32_t EpochOf(uint64_t packed) {
    return static_cast<uint32_t>(packed);
  }

  struct alignas(kCacheLineSize) Shard {
    // Most recent (tid, epoch) written here: the steady-state write-skip check.
    std::atomic<uint64_t> last{0};
    std::atomic<uint32_t> cursor{0};
    std::atomic<uint32_t> calls{0};
    std::atomic<uint64_t> ring[kRingDepth] = {};
  };
  static_assert(sizeof(Shard) == kCacheLineSize,
                "a phase shard must own exactly one cache line");
  static_assert(alignof(Shard) == kCacheLineSize);

  // Dense ThreadIds start at 1, so the fold is a perfect 1:1 shard assignment for
  // up to kShards live threads — the hardware-conscious placement: each thread's
  // phase line is private to (and stays in the cache of) the core running it.
  Shard& ShardFor(ThreadId tid) { return shards_[(tid - 1) & (kShards - 1)]; }

  // Folds per-shard occupancy into the published snapshot. An entry is "recent" if
  // it is stamped with the current or the previous epoch, so a thread stays in the
  // phase for one full period after its last call and ages out on the next sweep —
  // the same role the old ring's eviction horizon played. Guarded by a try-lock:
  // losing the race means a concurrent sweep is already folding a fresher view.
  void Sweep(bool advance_epoch) {
    uint32_t expected = 0;
    if (!sweep_lock_.value.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      return;
    }
    uint32_t epoch = snapshot_.epoch.load(std::memory_order_relaxed);
    if (advance_epoch) {
      ++epoch;
      snapshot_.epoch.store(epoch, std::memory_order_relaxed);
    }
    uint64_t seen[kFoldSlots / 64];
    std::memset(seen, 0, sizeof(seen));
    uint32_t distinct = 0;
    for (const Shard& shard : shards_) {
      for (const std::atomic<uint64_t>& entry : shard.ring) {
        const uint64_t packed = entry.load(std::memory_order_relaxed);
        const ThreadId tid = TidOf(packed);
        // `epoch - EpochOf(...) <= 1` is wrap-safe: both live on the same modular
        // clock, and a genuinely stale entry can only alias as recent once every
        // 2^32 epochs.
        if (tid == 0 || epoch - EpochOf(packed) > 1) {
          continue;
        }
        const uint32_t fold = (tid - 1) & (kFoldSlots - 1);
        uint64_t& word = seen[fold >> 6];
        const uint64_t bit = uint64_t{1} << (fold & 63);
        if ((word & bit) == 0) {
          word |= bit;
          ++distinct;
        }
      }
    }
    snapshot_.distinct.store(distinct, std::memory_order_release);
    sweep_lock_.value.store(0, std::memory_order_release);
  }

  uint32_t period_;
  Shard shards_[kShards];
  // Read-mostly snapshot line: every call loads it, only sweeps store it. Epochs
  // start at 1 so epoch 0 doubles as the rings' "never written" sentinel.
  struct alignas(kCacheLineSize) Snapshot {
    std::atomic<uint32_t> epoch{1};
    std::atomic<uint32_t> distinct{0};
  };
  static_assert(sizeof(Snapshot) == kCacheLineSize);
  Snapshot snapshot_{};
  // The only cross-shard RMW left, hit once per sweep — not per call.
  CacheAligned<std::atomic<uint32_t>> sweep_lock_{};
};

}  // namespace tsvd

#endif  // SRC_CORE_PHASE_DETECTOR_H_
