// Concurrent-phase inference (Section 3.4.3).
//
// A global ring buffer holds the thread ids of the most recently executed TSVD points.
// The execution is in a concurrent phase iff the buffer contains points from more than
// one thread. A TSVD point inside a sequential phase (initialization, clean-up,
// join-after-fork) can never race, so near misses seen there are not dangerous.
#ifndef SRC_CORE_PHASE_DETECTOR_H_
#define SRC_CORE_PHASE_DETECTOR_H_

#include <atomic>
#include <cassert>

#include "src/common/ids.h"

namespace tsvd {

class PhaseDetector {
 public:
  static constexpr int kMaxBuffer = 64;

  explicit PhaseDetector(int buffer_size) : size_(buffer_size) {
    assert(buffer_size >= 1 && buffer_size <= kMaxBuffer);
    for (auto& slot : slots_) {
      slot.store(0, std::memory_order_relaxed);
    }
  }

  // Records that `tid` executed a TSVD point and returns whether the buffer currently
  // spans more than one thread. Relaxed atomics: the buffer is a heuristic; torn
  // interleavings only perturb which accesses count as concurrent, never correctness.
  bool RecordAndCheck(ThreadId tid) {
    const uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    slots_[i % size_].store(tid, std::memory_order_relaxed);
    ThreadId first = 0;
    for (int s = 0; s < size_; ++s) {
      const ThreadId t = slots_[s].load(std::memory_order_relaxed);
      if (t == 0) {
        continue;  // not yet filled
      }
      if (first == 0) {
        first = t;
      } else if (t != first) {
        return true;
      }
    }
    return false;
  }

 private:
  int size_;
  std::atomic<uint64_t> next_{0};
  std::atomic<ThreadId> slots_[kMaxBuffer];
};

}  // namespace tsvd

#endif  // SRC_CORE_PHASE_DETECTOR_H_
