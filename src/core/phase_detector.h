// Concurrent-phase inference (Section 3.4.3).
//
// A global ring buffer holds the thread ids of the most recently executed TSVD points.
// The execution is in a concurrent phase iff the buffer contains points from more than
// one thread. A TSVD point inside a sequential phase (initialization, clean-up,
// join-after-fork) can never race, so near misses seen there are not dangerous.
//
// Hot-path design: the naive implementation rescans all B slots on every call, which
// put an O(B) loop (B = 64 worst case) on the OnCall fast path. Instead the detector
// maintains the answer incrementally: a per-thread occupancy count plus a distinct-
// thread counter, both updated only when a slot's thread actually changes. The steady
// state of a phase — the same threads keep executing points — advances the shared
// cursor, reads one ring slot (already holding the caller's id, so no write), and
// answers from a single relaxed load: O(1), no locks, no scans.
//
// Invariant: ThreadId 0 is the "slot never filled" sentinel. CurrentThreadId() hands
// out ids starting at 1 and never reuses 0 (see thread_id.h); RecordAndCheck asserts
// this so a future id scheme cannot silently alias the sentinel and make a real
// thread invisible to phase detection.
#ifndef SRC_CORE_PHASE_DETECTOR_H_
#define SRC_CORE_PHASE_DETECTOR_H_

#include <atomic>
#include <cassert>

#include "src/common/ids.h"

namespace tsvd {

class PhaseDetector {
 public:
  static constexpr int kMaxBuffer = 64;

  explicit PhaseDetector(int buffer_size) : size_(buffer_size) {
    assert(buffer_size >= 1 && buffer_size <= kMaxBuffer);
    for (auto& slot : slots_) {
      slot.tid.store(0, std::memory_order_relaxed);
    }
    for (auto& count : counts_) {
      count.store(0, std::memory_order_relaxed);
    }
  }

  // Records that `tid` executed a TSVD point and returns whether the buffer currently
  // spans more than one thread. Relaxed atomics throughout: the buffer is a heuristic;
  // torn interleavings only perturb which accesses count as concurrent, never
  // correctness. The slot exchange linearizes evictions, so every stored id is
  // decremented exactly once and the occupancy counts never drift.
  bool RecordAndCheck(ThreadId tid) {
    assert(tid != 0 && "ThreadId 0 is reserved as the empty-slot sentinel");
    const ThreadId id = Fold(tid);
    // The cursor must stay globally shared: it is what interleaves different
    // threads' records across the ring. (A per-thread cursor was tried and reverted
    // — threads with similar call counts sit at correlated positions and overwrite
    // each other's entries in place, so the ring degenerates to the latest thread's
    // id and real concurrency goes undetected.)
    const uint64_t i = next_.v.fetch_add(1, std::memory_order_relaxed);
    std::atomic<ThreadId>& slot = slots_[i % size_].tid;
    // Steady state — the slot already holds this thread — needs no write at all:
    // exchanging id for id cannot change any occupancy count, so skipping the RMW
    // is observationally equivalent and keeps the one-thread phase loop read-only.
    if (slot.load(std::memory_order_relaxed) == id) {
      return distinct_.load(std::memory_order_relaxed) > 1;
    }
    const ThreadId old = slot.exchange(id, std::memory_order_relaxed);
    if (old != id) {
      if (counts_[id].fetch_add(1, std::memory_order_relaxed) == 0) {
        distinct_.fetch_add(1, std::memory_order_relaxed);
      }
      if (old != 0 && counts_[old].fetch_sub(1, std::memory_order_relaxed) == 1) {
        distinct_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    return distinct_.load(std::memory_order_relaxed) > 1;
  }

 private:
  // Occupancy is tracked per folded id so the count table stays a fixed 16KB even if
  // the process churns through unbounded thread ids. Two threads folding together can
  // only under-report concurrency (they look like one thread), mirroring the
  // conservative direction of the paper's heuristic; with < 4096 live threads the
  // fold is the identity.
  static constexpr uint32_t kFoldSlots = 4096;
  static ThreadId Fold(ThreadId tid) { return 1 + ((tid - 1) & (kFoldSlots - 1)); }

  int size_;
  // next_ is the single globally shared RMW of the fast path; keep it on its own
  // cache line so its traffic does not invalidate the distinct-count line every
  // caller reads.
  struct alignas(64) PaddedU64 {
    std::atomic<uint64_t> v{0};
  };
  PaddedU64 next_{};
  struct alignas(64) Slot {
    std::atomic<ThreadId> tid{0};
  };
  Slot slots_[kMaxBuffer];
  std::atomic<uint32_t> counts_[kFoldSlots + 1];
  alignas(64) std::atomic<int32_t> distinct_{0};
};

}  // namespace tsvd

#endif  // SRC_CORE_PHASE_DETECTOR_H_
