#include "src/core/runtime.h"

#include <cassert>

#include "src/common/thread_id.h"

namespace tsvd {

std::atomic<Runtime*> Runtime::current_{nullptr};
thread_local Runtime* Runtime::internal_tls_runtime = nullptr;
thread_local bool Runtime::internal_tls_bound = false;

Runtime::Runtime(const Config& config, std::unique_ptr<Detector> detector)
    : config_(config),
      detector_(std::move(detector)),
      wants_sync_(detector_->WantsSyncEvents()),
      phase_(config.phase_buffer_size),
      engine_(config) {}

Runtime::~Runtime() {
  // Guard against a runtime being destroyed while still installed.
  Runtime* expected = this;
  current_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

void Runtime::Install(Runtime* rt) {
  Runtime* expected = nullptr;
  const bool ok = current_.compare_exchange_strong(expected, rt, std::memory_order_acq_rel);
  assert(ok && "another Runtime is already installed");
  (void)ok;
}

void Runtime::Uninstall(Runtime* rt) {
  Runtime* expected = rt;
  current_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

void Runtime::OnCall(ObjectId obj, OpId op, OpKind kind) noexcept {
  if (disabled_.load(std::memory_order_relaxed)) {
    return;  // fail-open: the host test runs on, uninstrumented
  }
  try {
    OnCallImpl(obj, op, kind);
  } catch (...) {
    RecordInternalError();
  }
}

void Runtime::OnCallImpl(ObjectId obj, OpId op, OpKind kind) {
  const ThreadId tid = CurrentThreadId();
  const Micros now = NowMicros();
  engine_.NoteProgress(tid, now);

  Access access;
  access.tid = tid;
  access.obj = obj;
  access.op = op;
  access.kind = kind;
  access.time = now;
  access.ctx = CurrentCtx();
  access.concurrent_phase = phase_.RecordAndCheck(tid);

  oncall_count_.Add(tid);
  coverage_.Record(op, tid, access.concurrent_phase);

  // check_for_trap: catch a conflicting sleeper red-handed — and wake it, the
  // rest of its sleep is pure overhead now that the bug is on record.
  TrapRegistry::Conflict conflict = traps_.CheckAndMark(access);
  if (conflict.found) {
    ReportViolation(conflict, access);
    detector_->OnViolation(conflict.trapped_access, access);
    if (!config_.disable_early_wake) {
      engine_.WakeThread(conflict.trapped_access.tid, WakeReason::kCatchWake);
    }
  }

  // should_delay + admission control.
  const DelayDecision decision = detector_->OnCall(access);
  if (!decision.inject || decision.duration_us <= 0) {
    return;
  }
  if (config_.serialize_delays && traps_.ArmedCount() > 0) {
    // Ablation: strictly avoid overlapping delays (Section 3.4.6 discusses and
    // rejects this design).
    return;
  }
  if (!RequestBudgetAllows(decision.duration_us)) {
    engine_.NoteSkippedBudget();
    return;
  }
  if (!engine_.Admit(tid, decision.duration_us)) {
    return;  // per-thread / aggregate budget or overhead cap; engine counts it
  }

  TrapRegistry::Trap* trap = traps_.Set(access, ScopeStack::Current().Snapshot());
  delays_injected_.Add(tid);
  if (trap_arm_observer_) {
    trap_arm_observer_(op);
  }
  const ParkResult park = engine_.Park(tid, op, decision.duration_us);
  ChargeRequestBudget(park.end_us - park.start_us);

  const bool hit = traps_.Clear(trap);
  DelayOutcome outcome;
  outcome.start_us = park.start_us;
  outcome.end_us = park.end_us;
  outcome.conflict_found = hit;
  outcome.aborted = park.reason == WakeReason::kStallCancel ||
                    park.reason == WakeReason::kShutdown;
  detector_->OnDelayFinished(access, outcome);
}

void Runtime::OnSync(const SyncEvent& event) noexcept {
  if (!wants_sync_ || disabled_.load(std::memory_order_relaxed)) {
    return;
  }
  try {
    sync_events_.fetch_add(1, std::memory_order_relaxed);
    detector_->OnSync(event);
  } catch (...) {
    RecordInternalError();
  }
}

void Runtime::RecordInternalError() noexcept {
  const uint64_t errors = internal_errors_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.max_internal_errors > 0 &&
      errors >= static_cast<uint64_t>(config_.max_internal_errors)) {
    if (!disabled_.exchange(true, std::memory_order_acq_rel)) {
      // Release anyone still parked; their OnCallImpl frames resume and finish
      // inside their own try blocks.
      engine_.CancelAllParked(WakeReason::kShutdown);
    }
  }
}

void Runtime::ReportViolation(const TrapRegistry::Conflict& conflict, const Access& racing) {
  BugReport report;
  report.object = racing.obj;
  report.trapped.tid = conflict.trapped_access.tid;
  report.trapped.op = conflict.trapped_access.op;
  report.trapped.kind = conflict.trapped_access.kind;
  report.trapped.stack = conflict.trapped_stack;
  report.racing.tid = racing.tid;
  report.racing.op = racing.op;
  report.racing.kind = racing.kind;
  report.racing.stack = ScopeStack::Current().Snapshot();
  report.time_us = racing.time;

  {
    std::lock_guard<std::mutex> lock(reports_mu_);
    reports_.push_back(report);
  }
  if (observer_) {
    observer_(report);
  }
}

bool Runtime::RequestBudgetAllows(Micros duration) {
  if (config_.max_delay_per_request_us > 0) {
    const RequestId request = CurrentRequest();
    if (request != kNoRequest) {
      RequestBudgetShard& shard = BudgetShardFor(request);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.budgets[request] + duration > config_.max_delay_per_request_us) {
        return false;
      }
    }
  }
  return true;
}

void Runtime::ChargeRequestBudget(Micros spent) {
  if (config_.max_delay_per_request_us > 0) {
    const RequestId request = CurrentRequest();
    if (request != kNoRequest) {
      RequestBudgetShard& shard = BudgetShardFor(request);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.budgets[request] += spent;
    }
  }
}

RunSummary Runtime::Summary() const {
  RunSummary s;
  {
    std::lock_guard<std::mutex> lock(reports_mu_);
    s.reports = reports_;
  }
  for (const BugReport& r : s.reports) {
    s.unique_pairs.insert(r.Pair());
  }
  s.oncall_count = oncall_count_.Total();
  s.delays_injected = delays_injected_.Total();
  s.total_delay_us = engine_.TotalSleptUs();
  s.sync_events = sync_events_.load(std::memory_order_relaxed);
  s.trap_set_size = detector_->TrapSetSize();
  s.delays_early_woken = engine_.EarlyWoken();
  s.delays_aborted_stall = engine_.AbortedStall();
  s.delays_skipped_budget = engine_.SkippedBudget();
  s.early_wake_saved_us = engine_.EarlyWakeSavedUs();
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  s.runtime_disabled = disabled_.load(std::memory_order_relaxed);
  return s;
}

std::vector<BugReport> Runtime::Reports() const {
  std::lock_guard<std::mutex> lock(reports_mu_);
  return reports_;
}

}  // namespace tsvd
