#include "src/core/nearmiss_tracker.h"

#include <algorithm>

namespace tsvd {

std::vector<NearMissTracker::NearMiss> NearMissTracker::RecordAndFindConflicts(
    const Access& access) {
  std::vector<NearMiss> result;
  Shard& shard = ShardFor(access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  ObjHistory& history = shard.objects[access.obj];

  for (const Record& rec : history.records) {
    if (rec.tid == access.tid || !KindsConflict(rec.kind, access.kind)) {
      continue;
    }
    if (window_us_ >= 0 && access.time - rec.time > window_us_) {
      continue;
    }
    result.push_back(NearMiss{rec.op, rec.concurrent});
  }

  history.records.push_back(
      Record{access.tid, access.op, access.kind, access.time, access.concurrent_phase});
  if (static_cast<int>(history.records.size()) > history_) {
    history.records.erase(history.records.begin());
  }

  ++shard.inserts_since_sweep;
  MaybeSweep(shard, access.time);
  return result;
}

void NearMissTracker::MaybeSweep(Shard& shard, Micros now) {
  // Objects whose entire history is older than the window can never again produce a
  // near miss; sweep them occasionally so long runs do not accumulate dead entries.
  if (window_us_ < 0 || shard.inserts_since_sweep < 4096) {
    return;
  }
  shard.inserts_since_sweep = 0;
  for (auto it = shard.objects.begin(); it != shard.objects.end();) {
    const auto& records = it->second.records;
    const bool stale =
        records.empty() || now - records.back().time > 8 * window_us_;
    it = stale ? shard.objects.erase(it) : std::next(it);
  }
}

size_t NearMissTracker::TrackedObjects() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.objects.size();
  }
  return n;
}

}  // namespace tsvd
