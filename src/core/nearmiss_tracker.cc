#include "src/core/nearmiss_tracker.h"

#include <cassert>

namespace tsvd {

NearMissTracker::NearMissTracker(const Config& config)
    : window_us_(config.disable_nearmiss_window ? -1 : config.nearmiss_window_us),
      history_(config.disable_nearmiss_window ? config.nearmiss_history_unwindowed
                                              : config.nearmiss_history) {
  assert(history_ >= 1 && history_ <= kMaxHistory &&
         "per-object history must fit the inline conflict buffer");
  if (history_ > kMaxHistory) {
    history_ = kMaxHistory;  // fail soft in release builds
  }
}

void NearMissTracker::RecordAndFindConflicts(const Access& access, ConflictBuffer& out) {
  Shard& shard = ShardFor(access.obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  MruWay& way = MruFor(shard, access.tid);
  ObjHistory* hist = way.hist;
  if (way.obj != access.obj || hist == nullptr) {
    hist = &shard.objects[access.obj];
    if (hist->ring == nullptr) {
      // One allocation per object lifetime; later accesses are allocation-free.
      hist->ring = std::make_unique<Record[]>(history_);
    }
    way.obj = access.obj;
    way.hist = hist;
  }
  ObjHistory& history = *hist;

  // Oldest-to-newest scan preserves the eviction order of the erase-from-front
  // implementation this replaces (conflicts are reported oldest first).
  const int start = history.head - history.count + history_;
  for (int k = 0; k < history.count; ++k) {
    const Record& rec = history.ring[(start + k) % history_];
    if (rec.tid == access.tid || !KindsConflict(rec.kind, access.kind)) {
      continue;
    }
    if (window_us_ >= 0 && access.time - rec.time > window_us_) {
      continue;
    }
    out.push_back(NearMiss{rec.op, rec.concurrent});
  }

  history.ring[history.head] =
      Record{access.tid, access.op, access.kind, access.time, access.concurrent_phase};
  history.head = (history.head + 1) % history_;
  if (history.count < history_) {
    ++history.count;
  }

  ++shard.inserts_since_sweep;
  MaybeSweep(shard, access.time);
}

std::vector<NearMissTracker::NearMiss> NearMissTracker::RecordAndFindConflicts(
    const Access& access) {
  ConflictBuffer buffer;
  RecordAndFindConflicts(access, buffer);
  return std::vector<NearMiss>(buffer.begin(), buffer.end());
}

void NearMissTracker::MaybeSweep(Shard& shard, Micros now) {
  // Objects whose entire history is older than the window can never again produce a
  // near miss; sweep them occasionally so long runs do not accumulate dead entries.
  if (window_us_ < 0 || shard.inserts_since_sweep < 4096) {
    return;
  }
  shard.inserts_since_sweep = 0;
  // Erasure invalidates the MRU pointers (unordered_map elements are otherwise
  // pointer-stable, including across rehash).
  for (auto& way : shard.mru) {
    way.value = MruWay{};
  }
  for (auto it = shard.objects.begin(); it != shard.objects.end();) {
    const ObjHistory& history = it->second;
    const int newest = (history.head - 1 + history_) % history_;
    const bool stale = history.count == 0 ||
                       now - history.ring[newest].time > 8 * window_us_;
    it = stale ? shard.objects.erase(it) : std::next(it);
  }
}

size_t NearMissTracker::TrackedObjects() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.objects.size();
  }
  return n;
}

}  // namespace tsvd
