// Baseline variants occupying the top-left corner of the design space (Fig. 2):
// little analysis, many delays.
//
// DynamicRandom (Section 3.2): every TSVD point is eligible; each dynamic instance
// delays with a small fixed probability, for a random duration.
//
// StaticRandom (Section 3.3) emulates DataCollider's static sampling: static call
// sites are sampled uniformly irrespective of how often they execute, so hot paths do
// not drown out cold ones. The h-th dynamic hit of a site fires with probability
// min(1, quota / h) — each site's expected firings grow only logarithmically with its
// execution count.
#ifndef SRC_CORE_RANDOM_DETECTORS_H_
#define SRC_CORE_RANDOM_DETECTORS_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/common/config.h"
#include "src/common/per_thread.h"
#include "src/common/rng.h"
#include "src/core/detector.h"

namespace tsvd {

namespace internal {
// Shared per-thread RNG plumbing for the stateless baselines.
class RandomBase : public Detector {
 protected:
  explicit RandomBase(const Config& config) : config_(config) {}

  Rng& RngFor(ThreadId tid) {
    RngSlot& slot = rngs_.Get(tid);
    if (!slot.initialized) {
      slot.rng = Rng(config_.seed * 0xd1b54a32d192ed03ULL + tid);
      slot.initialized = true;
    }
    return slot.rng;
  }

  Config config_;

 private:
  struct RngSlot {
    Rng rng{0};
    bool initialized = false;
  };
  PerThread<RngSlot> rngs_;
};
}  // namespace internal

class DynamicRandomDetector : public internal::RandomBase {
 public:
  explicit DynamicRandomDetector(const Config& config) : RandomBase(config) {}

  std::string name() const override { return "DynamicRandom"; }

  DelayDecision OnCall(const Access& access) override {
    Rng& rng = RngFor(access.tid);
    if (rng.NextBool(config_.dynamic_random_probability)) {
      return DelayDecision{true, rng.NextInRange(1, config_.delay_us)};
    }
    return DelayDecision{};
  }
};

class StaticRandomDetector : public internal::RandomBase {
 public:
  explicit StaticRandomDetector(const Config& config)
      : RandomBase(config),
        hits_(std::make_unique<std::atomic<uint64_t>[]>(kCapacity)) {
    for (size_t i = 0; i < kCapacity; ++i) {
      hits_[i].store(0, std::memory_order_relaxed);
    }
  }

  std::string name() const override { return "DataCollider"; }

  DelayDecision OnCall(const Access& access) override {
    if (access.op >= kCapacity) {
      return DelayDecision{};
    }
    // Uniform static sampling: whether this site is in the sampled set is a pure
    // function of (seed, site), decided independently of how hot the site is.
    Rng site_rng(config_.seed * 0x2545f4914f6cdd1dULL + access.op);
    if (!site_rng.NextBool(config_.static_random_site_prob)) {
      return DelayDecision{};
    }
    const uint64_t h = hits_[access.op].fetch_add(1, std::memory_order_relaxed) + 1;
    Rng& rng = RngFor(access.tid);
    const double p = config_.static_random_quota / static_cast<double>(h);
    if (rng.NextBool(p < 1.0 ? p : 1.0)) {
      return DelayDecision{true, rng.NextInRange(1, config_.delay_us)};
    }
    return DelayDecision{};
  }

  static constexpr OpId kCapacity = 1 << 16;

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> hits_;
};

}  // namespace tsvd

#endif  // SRC_CORE_RANDOM_DETECTORS_H_
