// The global table of armed traps (Section 3.1).
//
// A trap is the triple (thread, object, operation) of a thread currently sleeping
// inside OnCall. Every other thread entering OnCall checks for a conflicting trap:
// same object, different thread, at least one write. Sharded by a mixed hash of the
// object so the check — which is on the hot path of every instrumented call — stays
// cheap.
//
// Hot-path design: traps are rare (at most a handful of threads sleep at once), so
// each shard carries a relaxed-atomic count of its armed traps and CheckAndMark
// returns without touching the shard mutex when the count is zero — the overwhelmingly
// common case. The counter is incremented with release ordering inside Set() before
// the arming thread proceeds to sleep, and read with acquire ordering by checkers, so
// any trap armed before a checker's access (in the happens-before sense) is never
// missed: the fast path can only skip shards whose traps are still concurrently being
// armed, which is indistinguishable from the checker arriving first.
//
// ArmedCount() sums the per-shard counters instead of maintaining a global one:
// the global counter was one more cache line every Set()/Clear() dirtied for all
// cores, and the sum (64 acquire loads of read-mostly lines) only runs on the
// serialize_delays admission path and in diagnostics — never in the per-call
// steady state.
#ifndef SRC_CORE_TRAP_REGISTRY_H_
#define SRC_CORE_TRAP_REGISTRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/padded.h"
#include "src/common/scope_stack.h"
#include "src/core/access.h"

namespace tsvd {

class TrapRegistry {
 public:
  struct Trap {
    Access access;
    StackTrace stack;
    bool hit = false;  // set when a racing thread conflicts with this trap
    // Index of this trap within its shard's vector, maintained by swap-and-pop so
    // Clear() is O(1) instead of a linear find.
    size_t slot = 0;
  };

  // A thread arms a trap before sleeping. The returned handle stays valid until
  // Clear(); traps are heap-allocated and owned by the registry.
  Trap* Set(const Access& access, StackTrace stack);

  // Disarms a trap; returns whether any conflict was caught while it was set.
  bool Clear(Trap* trap);

  // Returns the first armed trap conflicting with `access` (nullptr if none) and marks
  // it hit. The caller builds the bug report while the trapped thread still sleeps —
  // both threads are "caught red handed". The returned pointer is only valid while the
  // caller immediately copies from it; the trapped thread cannot clear it concurrently
  // because Clear() takes the same shard lock, but do not hold it past CopyConflict.
  struct Conflict {
    bool found = false;
    Access trapped_access;
    StackTrace trapped_stack;
  };
  Conflict CheckAndMark(const Access& access) {
    // Inline fast path: with no trap armed in the object's shard there is nothing to
    // check — one acquire load and out, no call, no lock (see the file comment for
    // why acquire here pairs with the release increment in Set()).
    Shard& shard = ShardFor(access.obj);
    if (shard.armed.load(std::memory_order_acquire) == 0) {
      return Conflict{};
    }
    return CheckAndMarkSlow(shard, access);
  }

  // Number of currently armed traps: the sum of the per-shard counters. O(kShards)
  // acquire loads of read-mostly lines; monotone-consistent rather than a locked
  // snapshot, which is all the admission check and diagnostics need. Off the
  // per-call fast path (only serialize_delays admission and tests call it), so a
  // shard scan here buys Set()/Clear() freedom from any globally shared write.
  size_t ArmedCount() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      n += shard.armed.load(std::memory_order_acquire);
    }
    return n;
  }

 private:
  static constexpr size_t kShards = 64;
  struct alignas(kCacheLineSize) Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Trap>> traps;
    // Armed traps in this shard; nonzero forces checkers through the mutex.
    std::atomic<uint32_t> armed{0};
  };
  static_assert(sizeof(Shard) % kCacheLineSize == 0 &&
                    alignof(Shard) == kCacheLineSize,
                "trap shards must not straddle a neighbor's cache line");

  Shard& ShardFor(ObjectId obj) { return shards_[Mix64(obj) % kShards]; }
  Conflict CheckAndMarkSlow(Shard& shard, const Access& access);

  Shard shards_[kShards];
};

}  // namespace tsvd

#endif  // SRC_CORE_TRAP_REGISTRY_H_
