// The global table of armed traps (Section 3.1).
//
// A trap is the triple (thread, object, operation) of a thread currently sleeping
// inside OnCall. Every other thread entering OnCall checks for a conflicting trap:
// same object, different thread, at least one write. Sharded by object so the check —
// which is on the hot path of every instrumented call — stays cheap.
#ifndef SRC_CORE_TRAP_REGISTRY_H_
#define SRC_CORE_TRAP_REGISTRY_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/scope_stack.h"
#include "src/core/access.h"

namespace tsvd {

class TrapRegistry {
 public:
  struct Trap {
    Access access;
    StackTrace stack;
    bool hit = false;  // set when a racing thread conflicts with this trap
  };

  // A thread arms a trap before sleeping. The returned handle stays valid until
  // Clear(); traps are heap-allocated and owned by the registry.
  Trap* Set(const Access& access, StackTrace stack);

  // Disarms a trap; returns whether any conflict was caught while it was set.
  bool Clear(Trap* trap);

  // Returns the first armed trap conflicting with `access` (nullptr if none) and marks
  // it hit. The caller builds the bug report while the trapped thread still sleeps —
  // both threads are "caught red handed". The returned pointer is only valid while the
  // caller immediately copies from it; the trapped thread cannot clear it concurrently
  // because Clear() takes the same shard lock, but do not hold it past CopyConflict.
  struct Conflict {
    bool found = false;
    Access trapped_access;
    StackTrace trapped_stack;
  };
  Conflict CheckAndMark(const Access& access);

  // Number of currently armed traps (diagnostics).
  size_t ArmedCount() const;

 private:
  static constexpr size_t kShards = 64;
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Trap>> traps;
  };

  Shard& ShardFor(ObjectId obj) { return shards_[obj % kShards]; }

  Shard shards_[kShards];
};

}  // namespace tsvd

#endif  // SRC_CORE_TRAP_REGISTRY_H_
