// Fig. 3: the async sqrt cache — unstructured task parallelism with async/await.
//
// getSqrt(x) returns a cached value or forks background work and caches the result.
// Two awaited calls race on the cache Dictionary (write-write on Add/Set, read-write
// on ContainsKey vs Set). The demo runs the same workload twice:
//   - with the .NET-style inline fast path (the bug cannot manifest under test), and
//   - with TSVD's force-async instrumentation (the bug is caught),
// reproducing the Section 4 observation that motivated force-async.
#include <cmath>
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/tsvd_detector.h"
#include "src/instrument/dictionary.h"
#include "src/tasks/task.h"
#include "src/tasks/task_runtime.h"

namespace {

using namespace tsvd;

size_t RunWorkload(Runtime& runtime) {
  Runtime::Installation install(runtime);
  Dictionary<int, double> dict;  // the shared cache

  auto get_sqrt = [&](int x) {
    return tasks::Async(
        [&dict, x] {
          TSVD_SCOPE("getSqrt");
          if (dict.ContainsKey(x)) {
            return dict.Get(x);  // fetch from cache
          }
          const double s = std::sqrt(static_cast<double>(x));  // background work
          SleepMicros(200);
          dict.Set(x, s);  // save to cache
          return s;
        },
        "getSqrt");
  };

  for (int round = 0; round < 6; ++round) {
    TSVD_SCOPE("ComputeBatch");
    tasks::Task<double> sqrt_a = get_sqrt(100 * round + 2);
    tasks::Task<double> sqrt_b = get_sqrt(100 * round + 3);
    const double total = tasks::Await(sqrt_a) + tasks::Await(sqrt_b);  // blocks
    (void)total;
    SleepMicros(1000);
  }
  return runtime.Summary().unique_pairs.size();
}

}  // namespace

int main() {
  Config config;
  config.delay_us = 2000;
  config.nearmiss_window_us = 2000;

  tasks::SetForceAsync(false);  // the .NET optimization: fast async runs synchronously
  Runtime inline_runtime(config, std::make_unique<TsvdDetector>(config));
  const size_t bugs_inline = RunWorkload(inline_runtime);
  std::printf("with inline async fast path:  %zu violation(s) caught "
              "(the bug hides under test)\n",
              bugs_inline);

  tasks::SetForceAsync(true);  // TSVD instrumentation forces real asynchrony
  Runtime forced_runtime(config, std::make_unique<TsvdDetector>(config));
  const size_t bugs_forced = RunWorkload(forced_runtime);
  tasks::SetForceAsync(false);
  std::printf("with force-async (Section 4): %zu violation(s) caught\n", bugs_forced);

  for (const BugReport& report : forced_runtime.Reports()) {
    std::printf("\n%s", report.ToString().c_str());
    break;
  }
  return bugs_forced > 0 ? 0 : 1;
}
