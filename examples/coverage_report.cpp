// Coverage blind spots (Section 5.2, "Actionable Reports"): apart from bug reports,
// TSVD reports which instrumented points were hit at all and which were hit in a
// concurrent context. One Microsoft team used exactly this to discover that critical
// code paths were only ever exercised sequentially during unit testing.
//
// This demo runs a small "service" whose config-store writes happen only in the
// single-threaded init phase, while lookups run concurrently — the coverage report
// flags the write sites as sequential-only testing blind spots.
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/tsvd_detector.h"
#include "src/instrument/dictionary.h"
#include "src/tasks/task.h"
#include "src/tasks/task_runtime.h"

int main() {
  using namespace tsvd;

  Config config;
  config.delay_us = 2000;
  config.nearmiss_window_us = 2000;
  Runtime runtime(config, std::make_unique<TsvdDetector>(config));
  Runtime::Installation install(runtime);
  tasks::SetForceAsync(true);

  Dictionary<std::string, int> config_store;
  {
    TSVD_SCOPE("ServiceInit");
    config_store.Set("max_connections", 128);  // only ever called before the
    config_store.Set("timeout_ms", 500);       // workers start: a blind spot
  }
  {
    TSVD_SCOPE("ServeRequests");
    std::vector<tasks::Task<void>> workers;
    for (int w = 0; w < 3; ++w) {
      workers.push_back(tasks::Run(
          [&] {
            TSVD_SCOPE("HandleRequest");
            for (int i = 0; i < 6; ++i) {
              (void)config_store.ContainsKey("timeout_ms");
              (void)config_store.Get("max_connections");
              SleepMicros(400);
            }
          },
          tasks::TaskTraits{.label = "worker"}));
    }
    tasks::WaitAll(workers);
  }
  tasks::SetForceAsync(false);

  std::printf("%s\n", runtime.coverage().Render().c_str());
  std::printf("sequential-only points: %zu of %zu — these call sites were never\n"
              "exercised concurrently; if production runs them concurrently, testing\n"
              "cannot expose their thread-safety violations.\n",
              runtime.coverage().SequentialOnlyPoints().size(),
              runtime.coverage().PointsHit());
  return 0;
}
