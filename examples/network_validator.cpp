// Fig. 10(b): the Network Validation bug.
//
// At service start-up a validator verifies every host's configuration with
// Parallel.ForEach; the delegate writes configureCache[host]. The data-parallel API
// silently makes the writes concurrent — a write-write TSV on the Dictionary.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/tsvd_detector.h"
#include "src/instrument/dictionary.h"
#include "src/tasks/parallel.h"
#include "src/tasks/task_runtime.h"

namespace {

using namespace tsvd;

int GetConfigLevel(const std::string& host) {
  // Mock config fetch whose latency varies per host.
  const int level = static_cast<int>(host.back() - '0');
  SleepMicros(400 * (1 + level % 3));
  return level;
}

}  // namespace

int main() {
  Config config;
  config.delay_us = 2000;
  config.nearmiss_window_us = 2000;
  Runtime runtime(config, std::make_unique<TsvdDetector>(config));
  Runtime::Installation install(runtime);
  tasks::SetForceAsync(true);

  std::vector<std::string> hostlist;
  for (int i = 0; i < 6; ++i) {
    hostlist.push_back("edge-router-" + std::to_string(i));
  }

  Dictionary<std::string, int> configure_cache;
  for (int round = 0; round < 3; ++round) {
    TSVD_SCOPE("ValidateNetwork");
    tasks::ParallelForEach(hostlist, [&](const std::string& host) {
      TSVD_SCOPE("ValidateHost");
      const int config_level = GetConfigLevel(host);
      configure_cache.Set(host, config_level);  // TSV: concurrent writers
    });
  }
  tasks::SetForceAsync(false);

  const RunSummary summary = runtime.Summary();
  std::printf("validated %zu hosts; TSVD reports %zu violation(s)\n\n",
              configure_cache.Count(), summary.unique_pairs.size());
  for (const BugReport& report : summary.reports) {
    std::printf("%s\n", report.ToString().c_str());
    break;
  }
  return summary.unique_pairs.empty() ? 1 : 0;
}
