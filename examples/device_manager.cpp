// Fig. 10(a): the Device Manager bug.
//
// A listener thread creates an asynchronous task per client message; each task updates
// GlobalStatus[clientID]. Two clients messaging at about the same time cause two
// concurrent Dictionary writes, silently corrupting the status table in production.
// TSVD catches it during the (mock) unit test.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/tsvd_detector.h"
#include "src/instrument/dictionary.h"
#include "src/tasks/task.h"
#include "src/tasks/task_runtime.h"

namespace {

using namespace tsvd;

class DeviceManager {
 public:
  // Called from the listener thread whenever a client message arrives; returns the
  // async status-update task, like the C# snippet's `async Task ClientStatusUpdate`.
  tasks::Task<void> ClientStatusUpdate(int client_id, int status) {
    return tasks::Async(
        [this, client_id, status] {
          TSVD_SCOPE("ClientStatusUpdate");
          SleepMicros(900);                      // parse / validate the message
          global_status_.Set(client_id, status);  // TSV: concurrent Dictionary writes
        },
        "ClientStatusUpdate");
  }

  size_t KnownClients() { return global_status_.Count(); }

 private:
  Dictionary<int, int> global_status_;
};

}  // namespace

int main() {
  Config config;
  config.delay_us = 2000;
  config.nearmiss_window_us = 2000;
  Runtime runtime(config, std::make_unique<TsvdDetector>(config));
  Runtime::Installation install(runtime);
  // Without force-async, the fast mock handlers complete synchronously and the bug
  // never manifests under test — the exact problem Section 4 describes.
  tasks::SetForceAsync(true);

  DeviceManager manager;
  // The listener loop: two chatty clients stream messages, interleaved a few hundred
  // microseconds apart — each message spawns an async status update.
  for (int wave = 0; wave < 3; ++wave) {
    TSVD_SCOPE("ListenerLoop");
    std::vector<tasks::Task<void>> updates;
    for (int msg = 0; msg < 3; ++msg) {
      updates.push_back(manager.ClientStatusUpdate(7, wave * 10 + msg));
      SleepMicros(400);  // the second client is a moment behind
      updates.push_back(manager.ClientStatusUpdate(8, wave * 10 + msg));
      SleepMicros(300);
    }
    tasks::WaitAll(updates);
    SleepMicros(1500);
  }
  tasks::SetForceAsync(false);

  const RunSummary summary = runtime.Summary();
  std::printf("device manager handled %zu clients; TSVD reports %zu violation(s)\n\n",
              manager.KnownClients(), summary.unique_pairs.size());
  for (const BugReport& report : summary.reports) {
    std::printf("%s\n", report.ToString().c_str());
    break;  // one representative report
  }
  return summary.unique_pairs.empty() ? 1 : 0;
}
