// Message-passing pipeline: TSVD's HB inference vs. sync it cannot see.
//
// A producer stages records in a Dictionary and sends a message; the consumer
// receives and post-processes the same records. The accesses conflict and happen
// close together (a near miss), but they are genuinely ordered — by a channel TSVD
// never instruments. TSVD arms the pair, injects one delay at the producer's write,
// observes the consumer stall proportionally (the message arrives late), infers the
// happens-before edge, prunes the pair, and reports nothing. No synchronization
// modeling, no false positive, no lasting overhead (Section 3.4.4, Fig. 6).
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/tsvd_detector.h"
#include "src/instrument/dictionary.h"
#include "src/tasks/channel.h"
#include "src/tasks/task.h"
#include "src/tasks/task_runtime.h"
#include "src/tasks/thread_pool.h"

int main() {
  using namespace tsvd;

  Config config;
  config.delay_us = 2000;
  config.nearmiss_window_us = 2000;
  Runtime runtime(config, std::make_unique<TsvdDetector>(config));
  Runtime::Installation install(runtime);
  tasks::SetForceAsync(true);

  Dictionary<int, int> staging;
  tasks::Channel<int> ready;

  for (int batch = 0; batch < 6; ++batch) {
    TSVD_SCOPE("PipelineBatch");
    tasks::Task<void> producer = tasks::Run(
        [&, batch] {
          TSVD_SCOPE("StageBatch");
          staging.Set(batch, batch * 10);  // write, then signal
          ready.Send(batch);
        },
        tasks::TaskTraits{.label = "producer"});
    tasks::Task<void> consumer = tasks::Run(
        [&] {
          TSVD_SCOPE("ProcessBatch");
          const int id = ready.Receive();     // ordered by the message...
          staging.Set(id, staging.Get(id) + 1);  // ...so these cannot race
        },
        tasks::TaskTraits{.label = "consumer"});
    producer.Wait();
    consumer.Wait();
  }
  tasks::ThreadPool::Instance().WaitIdle();
  tasks::SetForceAsync(false);

  auto& detector = static_cast<TsvdDetector&>(runtime.detector());
  const RunSummary summary = runtime.Summary();
  std::printf("instrumented calls: %llu, delays injected: %llu\n",
              static_cast<unsigned long long>(summary.oncall_count),
              static_cast<unsigned long long>(summary.delays_injected));
  std::printf("inferred happens-before edges: %llu\n",
              static_cast<unsigned long long>(detector.InferredHbEdges()));
  std::printf("violations reported: %zu (must be 0: the channel orders the accesses)\n",
              summary.unique_pairs.size());
  return summary.unique_pairs.empty() ? 0 : 1;
}
