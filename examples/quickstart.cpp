// Quickstart: instrument a Dictionary, run a racy workload under TSVD, print the
// violation report.
//
//   1. Create a Runtime with a TsvdDetector and install it (the "instrumented test").
//   2. Use tsvd::Dictionary and the task runtime as your code normally would.
//   3. Every report is a caught-red-handed violation: two threads at conflicting call
//      sites on one object — zero false positives by construction.
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/tsvd_detector.h"
#include "src/instrument/dictionary.h"
#include "src/tasks/task.h"
#include "src/tasks/task_runtime.h"

int main() {
  using namespace tsvd;

  // Paper defaults scaled 50x down (2ms delays) so this demo finishes instantly.
  Config config;
  config.delay_us = 2000;
  config.nearmiss_window_us = 2000;

  Runtime runtime(config, std::make_unique<TsvdDetector>(config));
  Runtime::Installation install(runtime);
  tasks::SetForceAsync(true);  // defeat the inline fast path, like the deployed tool

  Dictionary<int, int> shared;  // thread-unsafe: writes require exclusivity

  // Two "clients" update different keys concurrently — the Fig. 1 bug that developers
  // believe is safe. Run a few rounds: round 1 records the near miss, later rounds
  // trap it.
  for (int round = 0; round < 4; ++round) {
    TSVD_SCOPE("ProcessBatch");
    tasks::Task<void> even = tasks::Run(
        [&] {
          TSVD_SCOPE("UpdateEven");
          for (int i = 0; i < 3; ++i) {
            shared.Set(2 * i, round);
            SleepMicros(700);
          }
        },
        tasks::TaskTraits{.label = "even_client"});
    tasks::Task<void> odd = tasks::Run(
        [&] {
          TSVD_SCOPE("UpdateOdd");
          SleepMicros(400);
          for (int i = 0; i < 3; ++i) {
            shared.Set(2 * i + 1, round);
            SleepMicros(700);
          }
        },
        tasks::TaskTraits{.label = "odd_client"});
    even.Wait();
    odd.Wait();
  }
  tasks::SetForceAsync(false);

  const RunSummary summary = runtime.Summary();
  std::printf("instrumented calls: %llu, delays injected: %llu\n",
              static_cast<unsigned long long>(summary.oncall_count),
              static_cast<unsigned long long>(summary.delays_injected));
  std::printf("unique thread-safety violations: %zu\n\n", summary.unique_pairs.size());
  for (const BugReport& report : summary.reports) {
    std::printf("%s\n", report.ToString().c_str());
  }
  if (summary.unique_pairs.empty()) {
    std::printf("no violation caught this run — try again (the race is probabilistic,\n"
                "TSVD usually catches it in run 1)\n");
    return 1;
  }
  return 0;
}
